"""The instrumentation core: hook points, counters and the zero-cost off path.

Every layer of the simulated system -- the event kernel, the contention
network, the broadcast algorithms, consensus, group membership and the
failure detectors -- reports what it does through *named hook points* on a
single per-system :class:`Instrumentation` object.  The hooks update cheap
primitives (monotonic counters, max-gauges, histograms), maintain the
A-broadcast lifecycle (broadcast -> sequenced -> first A-delivery, with the
per-stage latency breakdown), optionally append a structured event record,
and fan out to subscribers (the trace recorders of
:mod:`repro.analysis.tracing` are plain subscribers).

The paper's whole argument is observational, but observation must never
perturb the run: hooks schedule no events, send no messages and draw no
random numbers, so an instrumented run is bit-identical to an uninstrumented
one (pinned by the golden-neutrality tests).

**The off path.**  When instrumentation is off, protocol layers hold the
module singleton :data:`NULL` -- a :class:`NullInstrumentation` whose hook
methods have empty bodies -- so their hot path pays one attribute lookup and
one no-op call.  The two innermost loops (the simulator's event loop and
``Network.send``) avoid even that: they keep ``None`` and branch, and the
simulator selects a hook-free run loop up front.  A benchmark gate
(``benchmarks/bench_instrumentation.py``) holds the off path within 2 % of
the pre-instrumentation kernel.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Tuple


class NullInstrumentation:
    """The disabled instrumentation: every hook is an empty method.

    Protocol layers call hooks unconditionally on whatever object they hold;
    holding this singleton makes the whole subsystem one no-op call per hook
    site.  It deliberately implements *only* the hook points -- subscribing
    or snapshotting a disabled instrumentation is a bug, so those raise.
    """

    #: Discriminator the simulator/network use to refuse a disabled object.
    enabled = False

    # -- hook points (same signatures as Instrumentation, empty bodies) -------

    def message_send(self, time, message, dropped=False):
        pass

    def message_deliver(self, time, dest, message):
        pass

    def abcast_broadcast(self, time, pid, broadcast_id, payload):
        pass

    def abcast_sequenced(self, time, pid, broadcast_id):
        pass

    def abcast_deliver(self, time, pid, broadcast_id, payload):
        pass

    def suspicion(self, time, monitor, target, suspected):
        pass

    def consensus_started(self, time, pid, cid):
        pass

    def consensus_round(self, time, pid, cid, round_number):
        pass

    def consensus_decided(self, time, pid, cid):
        pass

    def view_change(self, time, pid, vid):
        pass

    def view_installed(self, time, pid, view):
        pass

    def reformation_proposed(self, time, pid, epoch):
        pass

    def service_request(self, time, client, status):
        pass

    def service_reply(self, time, client, response_time):
        pass

    def service_batch(self, time, pid, size):
        pass

    def partition_changed(self, time, blocked_links):
        pass

    def process_degraded(self, time, pid, factor):
        pass

    def sim_event(self, time, category):
        pass

    def queue_depth(self, depth):
        pass

    def count(self, name, delta=1):
        pass

    def observe(self, name, value):
        pass

    def gauge_max(self, name, value):
        pass

    def subscribe(self, hook, fn):
        raise RuntimeError(
            "instrumentation is disabled; enable it first "
            "(BroadcastSystem.enable_instrumentation())"
        )

    unsubscribe = subscribe


#: The module-level disabled singleton every layer holds by default.
NULL = NullInstrumentation()

#: Hook names subscribers can attach to (the recorder-facing surface).
HOOKS = (
    "message_send",
    "message_deliver",
    "abcast_broadcast",
    "abcast_sequenced",
    "abcast_deliver",
    "suspicion",
    "consensus_started",
    "consensus_round",
    "consensus_decided",
    "view_change",
    "view_installed",
    "reformation_proposed",
    "service_request",
    "service_reply",
    "service_batch",
    "partition_changed",
    "process_degraded",
)


def _bid_key(broadcast_id) -> List[int]:
    """JSON-friendly form of a BroadcastID (works for any (sender, seq) pair)."""
    return [int(broadcast_id[0]), int(broadcast_id[1])]


class Instrumentation:
    """Per-system metric primitives plus the named hook points.

    Parameters
    ----------
    record_events:
        Whether hook invocations append structured event records to
        :attr:`events` (the source of the JSONL and Chrome trace exports).
        Counters, gauges and histograms are always maintained; campaigns
        that only need the ``metrics.json`` snapshot can turn event
        recording off to bound memory on long runs.
    """

    enabled = True

    def __init__(self, record_events: bool = True) -> None:
        self.record_events = record_events
        #: Monotonic counters, e.g. ``counters["messages.sent"]``.
        self.counters: Dict[str, int] = defaultdict(int)
        #: Max-gauges (high-water marks), e.g. ``gauges["sim.queue_depth_hwm"]``.
        self.gauges: Dict[str, float] = {}
        #: Raw histogram observations, e.g. ``histograms["abcast.latency"]``.
        self.histograms: Dict[str, List[float]] = defaultdict(list)
        #: Structured event records, in emission order (when ``record_events``).
        self.events: List[Dict[str, Any]] = []
        self._subs: Dict[str, List[Callable[..., None]]] = {}
        # A-broadcast lifecycle state (stage timestamps keyed by BroadcastID).
        self._broadcast_times: Dict[Any, float] = {}
        self._sequence_times: Dict[Any, float] = {}
        self._first_delivery: Dict[Any, float] = {}
        # Active wrong/right suspicions keyed by (monitor, target).
        self._suspected_since: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------ primitives

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to counter ``name``."""
        self.counters[name] += delta

    def observe(self, name: str, value: float) -> None:
        """Record one observation in histogram ``name``."""
        self.histograms[name].append(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise max-gauge ``name`` to ``value`` if it is a new high."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # ------------------------------------------------------------------ subscribers

    def subscribe(self, hook: str, fn: Callable[..., None]) -> None:
        """Call ``fn`` with the hook's arguments on every ``hook`` invocation."""
        if hook not in HOOKS:
            raise ValueError(f"unknown hook {hook!r}; expected one of {HOOKS}")
        self._subs.setdefault(hook, []).append(fn)

    def unsubscribe(self, hook: str, fn: Callable[..., None]) -> None:
        """Detach ``fn`` from ``hook`` (ValueError if it is not subscribed)."""
        try:
            self._subs.get(hook, []).remove(fn)
        except ValueError:
            raise ValueError(f"{fn!r} is not subscribed to {hook!r}") from None

    def _notify(self, hook: str, *args: Any) -> None:
        subs = self._subs.get(hook)
        if subs:
            for fn in list(subs):
                fn(*args)

    # ------------------------------------------------------------------ hook points

    def message_send(self, time: float, message, dropped: bool = False) -> None:
        """A message reached :meth:`repro.sim.network.Network.send`.

        ``dropped`` marks sends swallowed by the software-crash semantics
        (crashed sender): they never load any resource, so they count under
        a separate counter, mirroring ``NetworkStats``.
        """
        if dropped:
            self.counters["messages.dropped_sender_crashed"] += 1
        else:
            self.counters["messages.sent"] += 1
            self.counters["messages.sent." + message.protocol] += 1
        self._notify("message_send", time, message, dropped)
        if self.record_events:
            record = {
                "t": time,
                "ev": "send",
                "from": message.sender,
                "to": list(message.destinations),
                "proto": message.protocol,
            }
            if dropped:
                record["dropped"] = True
            self.events.append(record)

    def message_deliver(self, time: float, dest: int, message) -> None:
        """The network handed ``message`` up to process ``dest``."""
        self.counters["messages.delivered"] += 1
        self._notify("message_deliver", time, dest, message)
        if self.record_events:
            self.events.append(
                {
                    "t": time,
                    "ev": "recv",
                    "at": dest,
                    "from": message.sender,
                    "proto": message.protocol,
                }
            )

    def abcast_broadcast(self, time: float, pid: int, broadcast_id, payload) -> None:
        """Process ``pid`` A-broadcast ``broadcast_id`` (lifecycle start)."""
        self.counters["abcast.broadcasts"] += 1
        self._broadcast_times.setdefault(broadcast_id, time)
        self._notify("abcast_broadcast", time, pid, broadcast_id, payload)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "broadcast", "pid": pid, "bid": _bid_key(broadcast_id)}
            )

    def abcast_sequenced(self, time: float, pid: int, broadcast_id) -> None:
        """``broadcast_id`` got its place in the total order (first time only).

        Both algorithms report the sequencing point -- the FD stack when a
        consensus decision orders the message, the GM stacks when a sequencer
        batch assigns its sequence number -- on every process that learns it;
        only the earliest report counts, so the counter is the number of
        *messages* sequenced, not the number of processes that know.
        """
        if broadcast_id in self._sequence_times:
            return
        self._sequence_times[broadcast_id] = time
        self.counters["abcast.sequenced"] += 1
        broadcast_time = self._broadcast_times.get(broadcast_id)
        if broadcast_time is not None:
            self.observe("abcast.broadcast_to_sequence", time - broadcast_time)
        self._notify("abcast_sequenced", time, pid, broadcast_id)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "sequenced", "pid": pid, "bid": _bid_key(broadcast_id)}
            )

    def abcast_deliver(self, time: float, pid: int, broadcast_id, payload) -> None:
        """Process ``pid`` A-delivered ``broadcast_id`` (lifecycle end)."""
        self.counters["abcast.deliveries"] += 1
        if broadcast_id not in self._first_delivery:
            self._first_delivery[broadcast_id] = time
            broadcast_time = self._broadcast_times.get(broadcast_id)
            if broadcast_time is not None:
                self.observe("abcast.broadcast_to_deliver", time - broadcast_time)
            sequence_time = self._sequence_times.get(broadcast_id)
            if sequence_time is not None:
                self.observe("abcast.sequence_to_deliver", time - sequence_time)
        self._notify("abcast_deliver", time, pid, broadcast_id, payload)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "adeliver", "pid": pid, "bid": _bid_key(broadcast_id)}
            )

    def suspicion(self, time: float, monitor: int, target: int, suspected: bool) -> None:
        """Failure detector of ``monitor`` changed its mind about ``target``."""
        pair = (monitor, target)
        if suspected:
            self.counters["fd.suspicions"] += 1
            self._suspected_since.setdefault(pair, time)
        else:
            self.counters["fd.trusts"] += 1
            started = self._suspected_since.pop(pair, None)
            if started is not None:
                # A suspicion that ends in a trust restoration was a mistake
                # (crashed processes are never trusted again), so this
                # histogram is the measured mistake duration T_M.
                self.observe("fd.mistake_duration", time - started)
        self._notify("suspicion", time, monitor, target, suspected)
        if self.record_events:
            self.events.append(
                {
                    "t": time,
                    "ev": "suspicion",
                    "monitor": monitor,
                    "target": target,
                    "suspected": suspected,
                }
            )

    def consensus_started(self, time: float, pid: int, cid) -> None:
        """Process ``pid`` started participating in consensus instance ``cid``."""
        self.counters["consensus.proposals"] += 1
        self._notify("consensus_started", time, pid, cid)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "consensus_started", "pid": pid, "cid": str(cid)}
            )

    def consensus_round(self, time: float, pid: int, cid, round_number: int) -> None:
        """Process ``pid`` entered round ``round_number`` of instance ``cid``."""
        self.counters["consensus.rounds"] += 1
        self._notify("consensus_round", time, pid, cid, round_number)
        if self.record_events:
            self.events.append(
                {
                    "t": time,
                    "ev": "consensus_round",
                    "pid": pid,
                    "cid": str(cid),
                    "round": round_number,
                }
            )

    def consensus_decided(self, time: float, pid: int, cid) -> None:
        """Process ``pid`` learned the decision of instance ``cid``."""
        self.counters["consensus.decisions"] += 1
        self._notify("consensus_decided", time, pid, cid)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "consensus_decided", "pid": pid, "cid": str(cid)}
            )

    def view_change(self, time: float, pid: int, vid) -> None:
        """Process ``pid`` entered the view change of view identity ``vid``."""
        self.counters["gm.view_changes"] += 1
        self._notify("view_change", time, pid, vid)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "view_change", "pid": pid, "vid": list(vid)}
            )

    def view_installed(self, time: float, pid: int, view) -> None:
        """Process ``pid`` installed ``view`` (a :class:`repro.core.types.View`)."""
        self.counters["gm.views_installed"] += 1
        self.gauge_max("gm.max_epoch", view.epoch)
        self._notify("view_installed", time, pid, view)
        if self.record_events:
            self.events.append(
                {
                    "t": time,
                    "ev": "view_installed",
                    "pid": pid,
                    "view_id": view.view_id,
                    "epoch": view.epoch,
                    "members": list(view.members),
                }
            )

    def reformation_proposed(self, time: float, pid: int, epoch: int) -> None:
        """Process ``pid`` escalated a stalled view change to epoch ``epoch``."""
        self.counters["gm.reformations_proposed"] += 1
        self._notify("reformation_proposed", time, pid, epoch)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "reformation_proposed", "pid": pid, "epoch": epoch}
            )

    def service_request(self, time: float, client: int, status: str) -> None:
        """The service layer admitted/queued/shed one client request.

        ``status`` is ``"admitted"`` (A-broadcast immediately), ``"queued"``
        (parked in the admission queue until the in-flight window frees up),
        ``"shed"`` (rejected: window and queue both full) or ``"local"``
        (served from the ingress replica's local state, bypassing the
        broadcast layer entirely -- the ``consistency="local"`` read path).
        """
        self.counters["service.requests"] += 1
        self.counters["service.requests." + status] += 1
        self._notify("service_request", time, client, status)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "service_request", "client": client, "status": status}
            )

    def service_reply(self, time: float, client: int, response_time: float) -> None:
        """One client request completed with a reply after ``response_time`` ms."""
        self.counters["service.replies"] += 1
        self.observe("service.response_time", response_time)
        self._notify("service_reply", time, client, response_time)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "service_reply", "client": client, "rt": response_time}
            )

    def service_batch(self, time: float, pid: int, size: int) -> None:
        """The request batcher of process ``pid`` flushed a batch of ``size``."""
        self.counters["service.batches"] += 1
        self.observe("service.batch_size", size)
        self._notify("service_batch", time, pid, size)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "service_batch", "pid": pid, "size": size}
            )

    def partition_changed(self, time: float, blocked_links: int) -> None:
        """The network partition mask changed (``net.partition``).

        ``blocked_links`` is the number of directed links now blocked
        (0 = fully healed).
        """
        if blocked_links:
            self.counters["net.partitions"] += 1
        else:
            self.counters["net.heals"] += 1
        self.gauge_max("net.blocked_links_hwm", blocked_links)
        self._notify("partition_changed", time, blocked_links)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "partition", "blocked": blocked_links}
            )

    def process_degraded(self, time: float, pid: int, factor: float) -> None:
        """Process ``pid``'s CPU rate factor changed (``proc.degraded``).

        ``factor`` is the new service-time multiplier; 1.0 marks the end of
        a gray degradation.
        """
        if factor != 1.0:
            self.counters["proc.degradations"] += 1
        else:
            self.counters["proc.restorations"] += 1
        self.gauge_max("proc.degrade_factor_hwm", factor)
        self._notify("process_degraded", time, pid, factor)
        if self.record_events:
            self.events.append(
                {"t": time, "ev": "degraded", "pid": pid, "factor": factor}
            )

    def sim_event(self, time: float, category: str) -> None:
        """The kernel executed one event of callback ``category``.

        Called only from the simulator's instrumented run loop; no structured
        event is recorded (that would be one record per kernel event).
        """
        self.counters["sim.events"] += 1
        self.counters["sim.events." + category] += 1

    def queue_depth(self, depth: int) -> None:
        """Track the event-queue high-water mark (instrumented loop only)."""
        if depth > self.gauges.get("sim.queue_depth_hwm", -1):
            self.gauges["sim.queue_depth_hwm"] = depth

    # ------------------------------------------------------------------ views

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self.counters.get(name, 0)

    def counters_by_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix`` (sorted by name)."""
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith(prefix)
        }

    def first_delivery_latency(self, broadcast_id) -> Optional[float]:
        """Broadcast-to-first-delivery latency of one message, if complete."""
        started = self._broadcast_times.get(broadcast_id)
        delivered = self._first_delivery.get(broadcast_id)
        if started is None or delivered is None:
            return None
        return delivered - started
