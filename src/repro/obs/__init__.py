"""Unified instrumentation layer: per-layer metrics, traces and profiling.

The subsystem has two halves:

* :mod:`repro.obs.instrumentation` -- the :class:`Instrumentation` object a
  :class:`repro.system.BroadcastSystem` owns when tracing is on, its named
  hook points (message send/receive, the A-broadcast lifecycle, failure
  detector suspicions, consensus rounds, view changes, simulator event-loop
  stats) and the :data:`NULL` no-op singleton that makes the off path one
  attribute call per hook site;
* :mod:`repro.obs.export` -- the per-run ``metrics.json`` snapshot (with
  provenance), the structured JSONL event trace and the Chrome-trace span
  export of the message lifecycle.

Enable it per system (``SystemConfig(instrument=True)`` or
``system.enable_instrumentation()``), per campaign
(``CampaignRunner(instrument=True)``) or from the CLIs
(``--trace`` / ``--metrics-out``).
"""

from repro.obs.instrumentation import HOOKS, NULL, Instrumentation, NullInstrumentation
from repro.obs.export import (
    chrome_trace,
    metrics_snapshot,
    metrics_snapshot_from_obs,
    set_trace_dir,
    write_chrome_trace,
    write_event_trace,
    write_metrics,
)

__all__ = [
    "HOOKS",
    "NULL",
    "Instrumentation",
    "NullInstrumentation",
    "chrome_trace",
    "metrics_snapshot",
    "metrics_snapshot_from_obs",
    "set_trace_dir",
    "write_chrome_trace",
    "write_event_trace",
    "write_metrics",
]
