"""Exporters: ``metrics.json`` snapshots, JSONL event traces, Chrome traces.

Three views of one instrumented run:

* :func:`metrics_snapshot` -- a JSON-ready dict of every counter, gauge and
  summarised histogram, stamped with provenance (config hash, stack, fd
  kind, seed, package version, best-effort git revision) so a snapshot read
  months later still identifies the run that produced it;
* :func:`write_event_trace` -- the structured event records as JSON Lines,
  one hook invocation per line, for ad-hoc ``jq``-style analysis;
* :func:`chrome_trace` -- the message lifecycle (A-broadcast ->
  sequenced -> A-deliveries), failure detector suspicion intervals, view
  installations and reformations as a Chrome trace event file, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev for visual debugging of
  scenarios like ``view-majority-loss``.

The module also keeps the *process-wide trace sink* campaign workers use:
:func:`set_trace_dir` arms it (in the worker, for parallel campaigns) and
the scenario runner calls :func:`maybe_write_traces` after every measured
run, so per-point trace files land beside the campaign's result records.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.obs.instrumentation import Instrumentation

#: Bump when the shape of the metrics snapshot changes.
METRICS_SCHEMA = 1

_git_rev_cache: List[Optional[str]] = []

# Process-wide trace sink (armed per campaign worker via set_trace_dir).
_trace_dir: Optional[str] = None
_trace_prefix: str = ""


def git_revision() -> Optional[str]:
    """Best-effort git revision of the working tree (None outside a repo)."""
    if not _git_rev_cache:
        rev: Optional[str] = None
        try:
            rev = (
                subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    cwd=os.path.dirname(os.path.abspath(__file__)),
                    capture_output=True,
                    timeout=5,
                    check=True,
                )
                .stdout.decode("ascii", "replace")
                .strip()
                or None
            )
        except Exception:
            rev = None
        _git_rev_cache.append(rev)
    return _git_rev_cache[0]


def config_fingerprint(config) -> str:
    """Stable short hash of a ``SystemConfig`` (covers every field)."""
    import hashlib

    payload = json.dumps(asdict(config), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def summarize_histogram(values: List[float]) -> Dict[str, Any]:
    """Compact summary of one histogram: count, extrema, mean, p50/p95."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    count = len(ordered)

    def percentile(q: float) -> float:
        return ordered[min(count - 1, int(q * count))]

    return {
        "count": count,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / count,
        "p50": percentile(0.50),
        "p95": percentile(0.95),
    }


def metrics_snapshot_from_obs(obs: Instrumentation, config, **extra: Any) -> Dict[str, Any]:
    """Snapshot a bare :class:`Instrumentation` with provenance from ``config``.

    The building block behind :func:`metrics_snapshot`; also used directly
    when one instrumentation object aggregates several systems (the
    crash-transient driver shares one across its independent runs), in
    which case there is no single ``sim`` section to report.
    """
    provenance: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "config_hash": config_fingerprint(config),
        "stack": config.stack,
        "fd_kind": config.fd_kind,
        "stack_label": config.stack_label,
        "n": config.n,
        "seed": config.seed,
        "repro_version": __version__,
        "git_rev": git_revision(),
    }
    provenance.update(extra)
    return {
        "provenance": provenance,
        "counters": dict(sorted(obs.counters.items())),
        "gauges": dict(sorted(obs.gauges.items())),
        "histograms": {
            name: summarize_histogram(values)
            for name, values in sorted(obs.histograms.items())
        },
    }


def metrics_snapshot(system, **extra: Any) -> Dict[str, Any]:
    """The per-run ``metrics.json`` payload of an instrumented system.

    ``extra`` keys (e.g. ``scenario=...``, ``throughput=...``) are folded
    into the provenance block.  Raises if the system is not instrumented --
    an empty snapshot would silently read as "nothing happened".
    """
    obs = system.obs
    if obs is None or not obs.enabled:
        raise ValueError(
            "system is not instrumented; build it with instrument=True or "
            "call enable_instrumentation() before snapshotting"
        )
    snapshot = metrics_snapshot_from_obs(obs, system.config, **extra)
    snapshot["sim"] = {
        "now": system.sim.now,
        "events_processed": system.sim.events_processed,
        "run_exhausted": system.sim.run_exhausted,
    }
    return snapshot


def write_metrics(path: str, system, **extra: Any) -> Dict[str, Any]:
    """Write :func:`metrics_snapshot` to ``path``; returns the snapshot."""
    snapshot = metrics_snapshot(system, **extra)
    _write_json(path, snapshot)
    return snapshot


def write_event_trace(path: str, obs: Instrumentation) -> int:
    """Write the structured event records as JSON Lines; returns the count."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        for event in obs.events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return len(obs.events)


# ------------------------------------------------------------------ Chrome trace


def _us(time_ms: float) -> float:
    """Simulation time (ms by convention) to Chrome trace microseconds."""
    return time_ms * 1000.0


def chrome_trace(obs: Instrumentation) -> Dict[str, Any]:
    """The run as a Chrome trace event object (``chrome://tracing`` format).

    Message lifecycles become async spans (``b``/``n``/``e``) named after
    the broadcast id: the span opens at the A-broadcast, carries a
    ``sequenced`` instant when the message gets its place in the total
    order, and closes at the *first* A-delivery (the latency the paper
    plots); later per-process deliveries appear as thread instants.
    Suspicion intervals are async spans on the monitor's row, and view
    installations / reformation proposals are instant markers.
    """
    events: List[Dict[str, Any]] = []
    pids = set()
    delivered = set()
    suspicion_open = set()
    for record in obs.events:
        kind = record["ev"]
        time = _us(record["t"])
        if kind == "broadcast":
            bid = tuple(record["bid"])
            name = f"m({bid[0]}.{bid[1]})"
            pids.add(record["pid"])
            events.append(
                {
                    "ph": "b",
                    "cat": "abcast",
                    "id": name,
                    "name": name,
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 0,
                }
            )
        elif kind == "sequenced":
            bid = tuple(record["bid"])
            name = f"m({bid[0]}.{bid[1]})"
            pids.add(record["pid"])
            events.append(
                {
                    "ph": "n",
                    "cat": "abcast",
                    "id": name,
                    "name": "sequenced",
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 0,
                }
            )
        elif kind == "adeliver":
            bid = tuple(record["bid"])
            name = f"m({bid[0]}.{bid[1]})"
            pids.add(record["pid"])
            if bid not in delivered:
                delivered.add(bid)
                events.append(
                    {
                        "ph": "e",
                        "cat": "abcast",
                        "id": name,
                        "name": name,
                        "ts": time,
                        "pid": record["pid"],
                        "tid": 0,
                    }
                )
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "abcast",
                    "name": f"A-deliver {name}",
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 0,
                }
            )
        elif kind == "suspicion":
            monitor, target = record["monitor"], record["target"]
            pids.add(monitor)
            span = f"suspect p{target} @p{monitor}"
            if record["suspected"]:
                if (monitor, target) in suspicion_open:
                    continue
                suspicion_open.add((monitor, target))
                phase = "b"
            else:
                if (monitor, target) not in suspicion_open:
                    continue
                suspicion_open.discard((monitor, target))
                phase = "e"
            events.append(
                {
                    "ph": phase,
                    "cat": "fd",
                    "id": span,
                    "name": span,
                    "ts": time,
                    "pid": monitor,
                    "tid": 1,
                }
            )
        elif kind == "view_installed":
            pids.add(record["pid"])
            era = f"@e{record['epoch']}" if record["epoch"] else ""
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "cat": "gm",
                    "name": f"install view#{record['view_id']}{era}",
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 2,
                    "args": {"members": record["members"]},
                }
            )
        elif kind == "reformation_proposed":
            pids.add(record["pid"])
            events.append(
                {
                    "ph": "i",
                    "s": "p",
                    "cat": "gm",
                    "name": f"propose reformation e{record['epoch']}",
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 2,
                }
            )
        elif kind == "view_change":
            pids.add(record["pid"])
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "gm",
                    "name": f"view change {tuple(record['vid'])}",
                    "ts": time,
                    "pid": record["pid"],
                    "tid": 2,
                }
            )
    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"p{pid}"},
        }
        for pid in sorted(pids)
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, obs: Instrumentation) -> int:
    """Write :func:`chrome_trace` to ``path``; returns the event count."""
    trace = chrome_trace(obs)
    _write_json(path, trace)
    return len(trace["traceEvents"])


# ------------------------------------------------------------------ trace sink


def set_trace_dir(path: Optional[str], prefix: str = "") -> None:
    """Arm (or, with ``None``, disarm) the process-wide per-run trace sink.

    Campaign workers call this once per task (with the point's cache-key
    prefix) so trace files written by different points never collide.
    """
    global _trace_dir, _trace_prefix
    _trace_dir = path
    _trace_prefix = prefix


def get_trace_dir() -> Optional[str]:
    """The armed trace sink directory, or ``None``."""
    return _trace_dir


def maybe_write_traces(system, label: str) -> List[str]:
    """Write the JSONL + Chrome traces of ``system`` if the sink is armed.

    Returns the written paths (empty when the sink is disarmed or the
    system carries no instrumentation).  ``label`` should identify the run
    (scenario, stack, operating point); it is sanitised for the filesystem.
    """
    if _trace_dir is None or system.obs is None:
        return []
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in label)
    if _trace_prefix:
        safe = f"{_trace_prefix}-{safe}"
    os.makedirs(_trace_dir, exist_ok=True)
    jsonl = os.path.join(_trace_dir, safe + ".trace.jsonl")
    chrome = os.path.join(_trace_dir, safe + ".chrome.json")
    write_event_trace(jsonl, system.obs)
    write_chrome_trace(chrome, system.obs)
    return [jsonl, chrome]


def export_metrics_records(records: Dict[str, Dict[str, Any]], out_dir: str) -> int:
    """Write the metrics snapshot of every record that carries one.

    ``records`` is a campaign run's ``{cache_key: record}`` mapping; each
    snapshot lands in ``out_dir/<key>.metrics.json`` (cache hits included,
    which is what makes ``--metrics-out`` work on fully warm caches).
    Returns how many files were written.
    """
    written = 0
    for key, record in sorted(records.items()):
        metrics = record.get("metrics")
        if not metrics:
            continue
        _write_json(os.path.join(out_dir, f"{key}.metrics.json"), dict(metrics, key=key))
        written += 1
    return written


# ------------------------------------------------------------------ helpers


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def _write_json(path: str, payload: Dict[str, Any]) -> None:
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
