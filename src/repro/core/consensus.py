"""Chandra-Toueg rotating-coordinator consensus for failure detector ``<>S``.

The implementation follows the original algorithm with the "easy
optimisations" the paper mentions:

* **Round 1 skips the estimate phase.**  The round-1 coordinator proposes its
  own initial value directly, so a suspicion-free execution costs one
  multicast (the proposal), ``n - 1`` unicast acknowledgements and one
  multicast decision -- exactly the pattern of Fig. 1.
* **Lazy round progression.**  After acknowledging a proposal, a process
  waits for the decision instead of eagerly moving to the next round; it only
  advances when it suspects the current coordinator or when it receives a
  message of a higher round (catch-up rule).  This removes the superfluous
  estimate messages from failure-free runs while preserving liveness.

Several consensus instances can be in progress at the same time; they are
identified by an opaque, hashable *consensus id* (``cid``).  Decisions are
disseminated with reliable broadcast, as in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.reliable_broadcast import ReliableBroadcast
from repro.sim.process import Component, SimProcess

DecisionListener = Callable[[Hashable, Any], None]
UnknownInstanceListener = Callable[[Hashable], None]

_ESTIMATE = "ESTIMATE"
_PROPOSE = "PROPOSE"
_ACK = "ACK"
_NACK = "NACK"
_RESYNC = "CONS_RESYNC"
_DECIDE_TAG = "CONS_DECIDE"


class ConsensusInstance:
    """One execution of the Chandra-Toueg consensus algorithm."""

    def __init__(
        self,
        service: "ConsensusService",
        cid: Hashable,
        value: Any,
        participants: Sequence[int],
        coordinator_order: Optional[Sequence[int]] = None,
    ) -> None:
        self.service = service
        self.cid = cid
        self.participants: Tuple[int, ...] = tuple(participants)
        self.order: Tuple[int, ...] = (
            tuple(coordinator_order) if coordinator_order is not None else self.participants
        )
        if set(self.order) != set(self.participants):
            raise ValueError("coordinator_order must be a permutation of participants")
        self.majority = len(self.participants) // 2 + 1
        self.pid = service.pid

        self.estimate = value
        self.ts = 0
        self.round = 0
        # Coordinator of the current round, maintained by ``_enter_round``;
        # every suspicion flip and every current-round message reads it, so
        # it is cached instead of recomputed from the rotation.
        self._round_coordinator = self.order[-1]
        self.decided = False
        self.decision: Any = None

        self._acked_round: Set[int] = set()
        self._nacked_round: Set[int] = set()
        self._estimates: Dict[int, Dict[int, Tuple[int, Any]]] = {}
        self._acks: Dict[int, Set[int]] = {}
        self._nacks: Dict[int, Set[int]] = {}
        self._proposal_sent: Set[int] = set()
        self._proposal_value: Dict[int, Any] = {}
        self._received_proposal: Dict[int, Any] = {}
        self._future: Dict[int, List[Tuple[int, Any]]] = {}
        self._abandon_recheck_scheduled: Set[int] = set()
        #: Diagnostics: how many rounds this instance went through.
        self.rounds_executed = 0

    # ------------------------------------------------------------------ helpers

    def coordinator_of(self, round_number: int) -> int:
        """The coordinator of ``round_number`` (rotating over ``order``)."""
        return self.order[(round_number - 1) % len(self.order)]

    def _others(self) -> List[int]:
        return [pid for pid in self.participants if pid != self.pid]

    def _suspects(self, pid: int) -> bool:
        detector = self.service.process.failure_detector
        return detector is not None and detector.is_suspected(pid)

    def _send(self, destination: int, body: Any) -> None:
        self.service.send_one(destination, body)

    def _multicast(self, destinations: Sequence[int], body: Any) -> None:
        if destinations:
            self.service.send(list(destinations), body)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Enter round 1 (called once, right after construction)."""
        self._enter_round(1)

    def _enter_round(self, round_number: int) -> None:
        while True:
            if self.decided:
                return
            self.round = round_number
            self.rounds_executed += 1
            self.service._obs.consensus_round(
                self.service.now, self.pid, self.cid, round_number
            )
            coordinator = self.coordinator_of(round_number)
            self._round_coordinator = coordinator

            if coordinator == self.pid:
                self._run_coordinator_round(round_number)
                self._replay_future(round_number)
                return

            # Non-coordinator: send the estimate (rounds > 1), then wait for the
            # proposal unless the coordinator is already suspected.
            if round_number > 1:
                self._send(coordinator, (_ESTIMATE, self.cid, round_number, self.estimate, self.ts))
            if self._suspects(coordinator):
                self._send(coordinator, (_NACK, self.cid, round_number))
                self._nacked_round.add(round_number)
                round_number += 1
                continue
            self._replay_future(round_number)
            return

    def _run_coordinator_round(self, round_number: int) -> None:
        if round_number == 1:
            # Optimisation: the round-1 coordinator proposes its own value.
            self._send_proposal(round_number, self.estimate)
        else:
            estimates = self._estimates.setdefault(round_number, {})
            estimates[self.pid] = (self.ts, self.estimate)
            self._maybe_propose(round_number)

    def _replay_future(self, round_number: int) -> None:
        pending = self._future.pop(round_number, [])
        for sender, body in pending:
            self._process_current(sender, body)

    # ------------------------------------------------------------------ messages

    def handle(self, sender: int, body: Any) -> None:
        """Dispatch one consensus message belonging to this instance."""
        if self.decided:
            return
        if body[0] == _RESYNC:
            self._on_resync(sender)
            return
        round_number = body[2]
        if round_number < self.round:
            self._handle_old_round(sender, body)
            return
        if round_number > self.round:
            # Catch-up rule: jump forward only when the message proves that a
            # higher round is actively progressing and needs us -- a proposal
            # (we should acknowledge it) or an estimate addressed to us as the
            # coordinator of that round (we should drive it).  Reacting to any
            # other higher-round message would let every wrong suspicion made
            # by any process drag the whole system forward and livelock the
            # instance under frequent mistakes.
            self._future.setdefault(round_number, []).append((sender, body))
            kind = body[0]
            if kind == _PROPOSE or (
                kind == _ESTIMATE and self.coordinator_of(round_number) == self.pid
            ):
                self._skip_rounds(self.round + 1, round_number)
                self._enter_round(round_number)
            return
        self._process_current(sender, body)

    def _skip_rounds(self, first: int, limit: int) -> None:
        """Feed the coordinators of rounds the catch-up rule jumps over.

        Jumping from round ``r`` straight to ``r' > r + 1`` must not starve
        the coordinators of the rounds in between: each of them may already
        be parked in its own round waiting for a majority of estimates, and
        a process never suspects itself, so no failure detector event can
        ever unpark it -- three processes parked as the coordinators of
        three different rounds deadlock the instance permanently.  Send each
        skipped coordinator what a sequential pass through ``_enter_round``
        would have sent -- our estimate, plus the nack that records that we
        jumped past the round and will never acknowledge its proposal.
        """
        for round_number in range(first, limit):
            coordinator = self.coordinator_of(round_number)
            if coordinator == self.pid:
                continue
            self._send(
                coordinator, (_ESTIMATE, self.cid, round_number, self.estimate, self.ts)
            )
            self._send(coordinator, (_NACK, self.cid, round_number))
            self._nacked_round.add(round_number)

    def _handle_old_round(self, sender: int, body: Any) -> None:
        kind, _cid, round_number = body[0], body[1], body[2]
        if kind == _PROPOSE:
            # Help the stale coordinator move on.
            self._send(sender, (_NACK, self.cid, round_number))

    def _process_current(self, sender: int, body: Any) -> None:
        if self.decided:
            return
        kind = body[0]
        round_number = body[2]
        if round_number != self.round:
            return
        coordinator = self._round_coordinator

        if kind == _ESTIMATE:
            if coordinator != self.pid:
                return
            _tag, _cid, _r, estimate, ts = body
            estimates = self._estimates.setdefault(round_number, {})
            if sender not in estimates:
                estimates[sender] = (ts, estimate)
            self._maybe_propose(round_number)
        elif kind == _PROPOSE:
            if sender != coordinator or coordinator == self.pid:
                return
            value = body[3]
            if round_number in self._acked_round:
                # Duplicate proposal: a crash-recovered coordinator
                # re-multicast it because the original round may have been
                # cut short -- repeat the acknowledgement, ours may be the
                # missing one.
                self._send(coordinator, (_ACK, self.cid, round_number))
                return
            if round_number in self._nacked_round:
                return
            self._received_proposal[round_number] = value
            self.estimate = value
            self.ts = round_number
            self._acked_round.add(round_number)
            self._send(coordinator, (_ACK, self.cid, round_number))
        elif kind == _ACK:
            if coordinator != self.pid:
                return
            self._acks.setdefault(round_number, set()).add(sender)
            self._maybe_decide(round_number)
        elif kind == _NACK:
            if coordinator != self.pid:
                return
            self._nacks.setdefault(round_number, set()).add(sender)
            if round_number in self._proposal_sent:
                self._maybe_abandon_round(round_number)
            else:
                self._maybe_propose(round_number)

    # ------------------------------------------------------------------ coordinator

    def _maybe_propose(self, round_number: int) -> None:
        if round_number in self._proposal_sent or self.decided:
            return
        estimates = self._estimates.get(round_number, {})
        if len(estimates) < self.majority:
            return
        # Adopt the estimate with the highest timestamp (deterministic
        # tie-break on the sender id for reproducibility).
        best_sender = max(estimates, key=lambda sender: (estimates[sender][0], -sender))
        value = estimates[best_sender][1]
        self._send_proposal(round_number, value)

    def _send_proposal(self, round_number: int, value: Any) -> None:
        self._proposal_sent.add(round_number)
        self._proposal_value[round_number] = value
        self.estimate = value
        self.ts = round_number
        self._acks.setdefault(round_number, set()).add(self.pid)
        self._multicast(self._others(), (_PROPOSE, self.cid, round_number, value))
        self._maybe_decide(round_number)

    def _maybe_decide(self, round_number: int) -> None:
        if self.decided or round_number not in self._proposal_sent:
            return
        acks = self._acks.get(round_number, set())
        if len(acks) >= self.majority:
            self.service._local_decision(self.cid, self._proposal_value[round_number])

    def _maybe_abandon_round(self, round_number: int, deferred: bool = False) -> None:
        """Give up the round only once a majority of acks became impossible.

        A single wrong suspicion (hence a single nack) must not abort the
        round: the coordinator can still decide with the acknowledgements of
        the processes that did not suspect it.  The round is abandoned when

        * the explicit nacks alone rule out a majority of acks, or
        * the nacks plus the *suspected* silent processes rule it out and the
          situation persists for a short grace period (so that an
          instantaneous wrong suspicion of a process whose ack is still in
          flight does not needlessly abort the round -- that was observed to
          livelock the algorithm under very frequent mistakes).
        """
        if self.decided or self.round != round_number:
            return
        if round_number not in self._proposal_sent:
            return
        acks = self._acks.get(round_number, set())
        if len(acks) >= self.majority:
            return
        nacks = self._nacks.get(round_number, set())
        silent = [
            pid for pid in self.participants if pid not in acks and pid not in nacks
        ]
        if len(acks) + len(silent) < self.majority:
            # Explicit refusals alone make the round hopeless.
            self._enter_round(round_number + 1)
            return
        detector = self.service.process.failure_detector
        if detector is None:
            trusted_silent = silent
        else:
            suspected = detector._suspected
            trusted_silent = [pid for pid in silent if pid not in suspected]
        if len(acks) + len(trusted_silent) >= self.majority:
            return
        if deferred:
            self._enter_round(round_number + 1)
            return
        if round_number not in self._abandon_recheck_scheduled:
            self._abandon_recheck_scheduled.add(round_number)
            self.service.set_timer(
                self.service.abandon_grace, self._recheck_abandon, round_number
            )

    def _recheck_abandon(self, round_number: int) -> None:
        self._abandon_recheck_scheduled.discard(round_number)
        if not self.decided and self.round == round_number:
            self._maybe_abandon_round(round_number, deferred=True)

    # ------------------------------------------------------------------ recovery

    def resync_after_recovery(self) -> None:
        """Re-stimulate this instance after the local process recovered.

        Messages exchanged while the process was down were dropped, so the
        instance may be mutually blocked: a coordinator waiting for lost
        acknowledgements, or this process waiting for a proposal that was
        multicast while it could not receive.  A RESYNC multicast asks every
        participant to repeat the messages it addressed to this process
        (estimates/acks/nacks for rounds this process coordinates, its
        current proposal if it is a coordinator itself -- see
        :meth:`_on_resync`); then a coordinator re-multicasts its pending
        proposal (receivers acknowledge duplicates) and a non-coordinator
        abandons the current round exactly as if it suspected the
        coordinator, re-entering the rotation with fresh messages.
        """
        if self.decided:
            return
        self._multicast(self._others(), (_RESYNC, self.cid, self.round))
        round_number = self.round
        coordinator = self.coordinator_of(round_number)
        if coordinator == self.pid:
            if round_number in self._proposal_sent:
                self._multicast(
                    self._others(),
                    (_PROPOSE, self.cid, round_number, self._proposal_value[round_number]),
                )
            # Otherwise this process coordinates a round whose estimates
            # were dropped while it was down (it may even have entered the
            # round while down, through the clock-driven failure detector's
            # listeners).  The peers parked in this round can only be
            # unparked by our proposal, so abandoning it would deadlock
            # them; the RESYNC repeats bring the estimates (and the nacks
            # of peers that already moved past the round), after which the
            # normal propose/abandon rules resume.
            return
        self.on_suspicion_change(coordinator, True)

    def _on_resync(self, sender: int) -> None:
        """Repeat, for a crash-recovered ``sender``, the messages it missed.

        Everything this process previously addressed to ``sender`` may have
        been dropped while it was down, and none of it is ever re-sent on
        the normal paths (estimates and nacks are sent exactly once per
        round).  Without the repeats the instance can deadlock with every
        alive participant parked: e.g. the recovered process as the
        coordinator of round ``r`` waiting for estimates that were dropped,
        their senders waiting for its proposal, and no failure detector
        event ever unparking anyone because all of them are alive.  All the
        repeated messages are idempotent on the receiving side.
        """
        if self.decided:
            return
        for round_number in range(1, self.round + 1):
            if self.coordinator_of(round_number) != sender:
                continue
            if round_number > 1:
                self._send(
                    sender, (_ESTIMATE, self.cid, round_number, self.estimate, self.ts)
                )
            if round_number in self._acked_round:
                self._send(sender, (_ACK, self.cid, round_number))
            if round_number in self._nacked_round:
                self._send(sender, (_NACK, self.cid, round_number))
        if (
            self.coordinator_of(self.round) == self.pid
            and self.round in self._proposal_sent
        ):
            self._send(
                sender,
                (_PROPOSE, self.cid, self.round, self._proposal_value[self.round]),
            )

    # ------------------------------------------------------------------ suspicions

    def on_suspicion_change(self, pid: int, suspected: bool) -> None:
        """React to the failure detector suspecting/trusting ``pid``."""
        if self.decided or not suspected:
            return
        round_number = self.round
        coordinator = self._round_coordinator
        if coordinator == self.pid:
            # The coordinator re-evaluates whether the round can still
            # succeed when one of the processes it waits for gets suspected.
            self._maybe_abandon_round(round_number)
            return
        if pid != coordinator:
            return
        if round_number not in self._acked_round and round_number not in self._nacked_round:
            self._send(coordinator, (_NACK, self.cid, round_number))
            self._nacked_round.add(round_number)
        self._enter_round(round_number + 1)

    # ------------------------------------------------------------------ decision

    def mark_decided(self, value: Any) -> None:
        """Record that this instance has decided (set by the service)."""
        self.decided = True
        self.decision = value
        self._future.clear()


class ConsensusService(Component):
    """Hosts consensus instances and routes their messages (protocol ``"consensus"``).

    Instances are created by :meth:`propose`.  Messages that arrive for an
    instance the local process has not proposed in yet are buffered and
    replayed once :meth:`propose` is called; decisions are processed
    immediately in all cases because they are carried by reliable broadcast.
    """

    protocol = "consensus"

    def __init__(
        self,
        process: SimProcess,
        rbcast: ReliableBroadcast,
        abandon_grace: Optional[float] = None,
    ) -> None:
        super().__init__(process)
        self.rbcast = rbcast
        network_config = process.network.config
        #: Grace period before a coordinator abandons a round that is blocked
        #: only by suspicions (roughly one acknowledgement round-trip).
        self.abandon_grace = (
            abandon_grace
            if abandon_grace is not None
            else 2 * (2 * network_config.lambda_cpu + network_config.network_time) + 2.0
        )
        self._instances: Dict[Hashable, ConsensusInstance] = {}
        # Undecided subset of ``_instances``, maintained on creation and
        # decision: the suspicion sweep runs once per new suspicion (hot
        # under frequent wrong suspicions) and must not walk the full,
        # ever-growing instance history.
        self._undecided: Dict[Hashable, ConsensusInstance] = {}
        self._buffered: Dict[Hashable, List[Tuple[int, Any]]] = {}
        self._decisions: Dict[Hashable, Any] = {}
        self._decision_listeners: List[DecisionListener] = []
        self._unknown_listeners: List[UnknownInstanceListener] = []
        rbcast.add_listener(self._on_rbcast_delivery)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Subscribe to the local failure detector."""
        detector = self.process.failure_detector
        if detector is not None:
            detector.add_listener(self._on_suspicion_change)

    def on_recover(self) -> None:
        """Re-stimulate every undecided instance after a crash recovery."""
        for instance in list(self._instances.values()):
            instance.resync_after_recovery()

    # ------------------------------------------------------------------ API

    def add_decision_listener(self, listener: DecisionListener) -> None:
        """Subscribe to decisions: ``listener(cid, value)``, once per instance."""
        self._decision_listeners.append(listener)

    def add_unknown_instance_listener(self, listener: UnknownInstanceListener) -> None:
        """Subscribe to first contact with instances not yet proposed locally."""
        self._unknown_listeners.append(listener)

    def full_set(self) -> Tuple[int, ...]:
        """The full static process set of the system (ids ``0 .. n-1``).

        Group reformation runs its successor-view consensus over this set
        instead of the (majority-less) current view, so any global majority
        of alive processes can decide -- the property that restores liveness
        after view-majority loss.
        """
        return tuple(range(self.process.network.n))

    def propose(
        self,
        cid: Hashable,
        value: Any,
        participants: Optional[Sequence[int]] = None,
        coordinator_order: Optional[Sequence[int]] = None,
    ) -> ConsensusInstance:
        """Propose ``value`` in instance ``cid`` and start participating in it.

        ``participants`` defaults to the **full static process set**
        (:meth:`full_set`): an instance scoped that way is decidable by any
        majority of all processes, independent of the views a group
        membership layer above may have installed.
        """
        if participants is None:
            participants = self.full_set()
        if cid in self._instances:
            return self._instances[cid]
        instance = ConsensusInstance(self, cid, value, participants, coordinator_order)
        self._instances[cid] = instance
        self._obs.consensus_started(self.now, self.pid, cid)
        if cid in self._decisions:
            instance.mark_decided(self._decisions[cid])
            return instance
        self._undecided[cid] = instance
        instance.start()
        for sender, body in self._buffered.pop(cid, []):
            if not instance.decided:
                instance.handle(sender, body)
        return instance

    def has_proposed(self, cid: Hashable) -> bool:
        """Whether the local process has started participating in ``cid``."""
        return cid in self._instances

    def has_buffered(self, cid: Hashable) -> bool:
        """Whether messages are waiting for a local :meth:`propose` of ``cid``."""
        return cid in self._buffered

    def is_decided(self, cid: Hashable) -> bool:
        """Whether instance ``cid`` has decided locally."""
        return cid in self._decisions

    def decision(self, cid: Hashable) -> Any:
        """The decision of ``cid`` (raises ``KeyError`` if undecided)."""
        return self._decisions[cid]

    def instance(self, cid: Hashable) -> Optional[ConsensusInstance]:
        """The local instance object for ``cid`` (or ``None``)."""
        return self._instances.get(cid)

    # ------------------------------------------------------------------ messages

    def on_message(self, sender: int, body: Any) -> None:
        """Route a consensus message to its instance (or buffer it)."""
        cid = body[1]
        if cid in self._decisions:
            return
        instance = self._instances.get(cid)
        if instance is None:
            known = cid in self._buffered
            self._buffered.setdefault(cid, []).append((sender, body))
            if not known:
                for listener in list(self._unknown_listeners):
                    listener(cid)
            return
        instance.handle(sender, body)

    def _on_rbcast_delivery(self, origin: int, rb_uid: Tuple[int, int], payload: Any) -> None:
        if not isinstance(payload, tuple) or not payload or payload[0] != _DECIDE_TAG:
            return
        _tag, cid, value = payload
        self.rbcast.mark_stable(rb_uid)
        self._record_decision(cid, value)

    # ------------------------------------------------------------------ decisions

    def _local_decision(self, cid: Hashable, value: Any) -> None:
        """Called by the deciding coordinator: disseminate, then record.

        The decision message is handed to the network *before* the local
        decision listeners run: the listeners typically start the next
        ordering round (next consensus instance / next batch) and its
        messages must queue behind the decision on the CPU, exactly as in
        the sequencer algorithm, so that the two algorithms keep identical
        message timing.
        """
        if cid in self._decisions:
            return
        instance = self._instances.get(cid)
        participants = instance.participants if instance else None
        self.rbcast.broadcast((_DECIDE_TAG, cid, value), group=participants)
        self._record_decision(cid, value)

    def _record_decision(self, cid: Hashable, value: Any) -> None:
        if cid in self._decisions:
            return
        self._decisions[cid] = value
        self._obs.consensus_decided(self.now, self.pid, cid)
        self._undecided.pop(cid, None)
        instance = self._instances.get(cid)
        if instance is not None:
            instance.mark_decided(value)
        self._buffered.pop(cid, None)
        for listener in list(self._decision_listeners):
            listener(cid, value)

    # ------------------------------------------------------------------ suspicions

    def _on_suspicion_change(self, pid: int, suspected: bool) -> None:
        if not suspected or not self._undecided:
            # Instances only react to new suspicions (a restored trust is a
            # no-op in every round state), so skip the sweep entirely.
            return
        # The list copy is required: reacting can decide instances and start
        # new ones (both mutate ``_undecided``), exactly like the historical
        # full-instance sweep, which iterated in the same creation order.
        for instance in list(self._undecided.values()):
            if not instance.decided:
                instance.on_suspicion_change(pid, suspected)
