"""Common types shared by the atomic broadcast implementations."""

from __future__ import annotations

from typing import Any, Callable, List, NamedTuple, Tuple

from repro.sim.process import Component, SimProcess


class BroadcastID(NamedTuple):
    """Globally unique, totally ordered identifier of an A-broadcast message.

    The identifier is the pair ``(sender, sequence number at the sender)``.
    Ordering broadcast identifiers lexicographically gives the deterministic
    tie-break order both algorithms use when several messages are ordered by
    the same consensus decision / sequencing batch.
    """

    sender: int
    seq: int

    def __str__(self) -> str:
        return f"m({self.sender}.{self.seq})"


class View(NamedTuple):
    """A group membership view: an identifier and an ordered member list.

    The first member of the view acts as the sequencer of the GM algorithm
    (and as the round-1 coordinator of the view-change consensus).

    ``epoch`` counts group *reformations* (the recovery path that rebuilds
    the group after an installed view loses its majority of alive members).
    Views of a later epoch supersede every view of an earlier one regardless
    of their ``view_id``, so view identities are ordered by the pair
    ``(epoch, view_id)`` -- see :attr:`vid`.  Normal view changes inherit
    their predecessor's epoch; all views of a reformation-free run are
    epoch 0.
    """

    view_id: int
    members: Tuple[int, ...]
    epoch: int = 0

    @property
    def sequencer(self) -> int:
        """The process acting as sequencer in this view."""
        return self.members[0]

    @property
    def vid(self) -> Tuple[int, int]:
        """The totally ordered view identity ``(epoch, view_id)``.

        Protocol messages and fencing checks compare identities through this
        pair: a reformed view (higher epoch) beats any late view of the old
        epoch even when their ``view_id`` values collide.
        """
        return (self.epoch, self.view_id)

    def majority(self) -> int:
        """Size of a majority quorum of this view."""
        return len(self.members) // 2 + 1

    def __str__(self) -> str:
        era = f"@e{self.epoch}" if self.epoch else ""
        return f"view#{self.view_id}{era}{list(self.members)}"


DeliveryListener = Callable[[BroadcastID, Any], None]
BroadcastListener = Callable[[BroadcastID, Any], None]


class AtomicBroadcast(Component):
    """Common interface of the two atomic broadcast algorithms.

    Subclasses implement :meth:`broadcast` and call :meth:`_deliver` exactly
    once per message, in the agreed total order.  The base class keeps the
    local delivery log and notifies listeners, so the workload generators,
    metrics and applications can stay algorithm-agnostic.
    """

    def __init__(self, process: SimProcess) -> None:
        super().__init__(process)
        self._local_seq = 0
        self._delivered_ids: set = set()
        #: Local delivery log, in delivery order: list of (BroadcastID, payload).
        self.delivered: List[Tuple[BroadcastID, Any]] = []
        self._delivery_listeners: List[DeliveryListener] = []
        self._broadcast_listeners: List[BroadcastListener] = []

    # ------------------------------------------------------------------ API

    def broadcast(self, payload: Any) -> BroadcastID:
        """A-broadcast ``payload``; returns the message identifier."""
        raise NotImplementedError

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Subscribe to local A-deliveries: ``listener(broadcast_id, payload)``."""
        self._delivery_listeners.append(listener)

    def add_broadcast_listener(self, listener: BroadcastListener) -> None:
        """Subscribe to local A-broadcasts: ``listener(broadcast_id, payload)``."""
        self._broadcast_listeners.append(listener)

    def delivered_ids(self) -> List[BroadcastID]:
        """Identifiers delivered so far, in delivery order."""
        return [bid for bid, _payload in self.delivered]

    def has_delivered(self, broadcast_id: BroadcastID) -> bool:
        """Whether ``broadcast_id`` has been A-delivered locally."""
        return broadcast_id in self._delivered_ids

    @property
    def delivered_count(self) -> int:
        """Number of messages A-delivered locally."""
        return len(self.delivered)

    # ------------------------------------------------------------------ helpers

    def _next_broadcast_id(self) -> BroadcastID:
        self._local_seq += 1
        return BroadcastID(self.pid, self._local_seq)

    def _notify_broadcast(self, broadcast_id: BroadcastID, payload: Any) -> None:
        self._obs.abcast_broadcast(self.now, self.pid, broadcast_id, payload)
        for listener in list(self._broadcast_listeners):
            listener(broadcast_id, payload)

    def _deliver(self, broadcast_id: BroadcastID, payload: Any) -> bool:
        """Record the A-delivery of ``broadcast_id`` (idempotent).

        Returns ``True`` when the message was delivered now, ``False`` when it
        had already been delivered (duplicates are silently dropped, which is
        what makes view-change deliveries and state transfer idempotent).
        """
        if broadcast_id in self._delivered_ids:
            return False
        self._delivered_ids.add(broadcast_id)
        self.delivered.append((broadcast_id, payload))
        self._obs.abcast_deliver(self.now, self.pid, broadcast_id, payload)
        for listener in list(self._delivery_listeners):
            listener(broadcast_id, payload)
        return True
