"""The *FD algorithm*: Chandra-Toueg atomic broadcast.

A-broadcast(m) reliable-broadcasts ``m`` to all processes.  Delivery order is
decided by a sequence of consensus instances numbered 1, 2, ...; the initial
value and the decision of each instance is a set of message identifiers.  The
messages decided by instance ``k`` are A-delivered before those of instance
``k + 1`` and, within an instance, in the deterministic order of their
identifiers.

Crash *recovery* (beyond the paper's crash-stop model) works with a warm
restart plus a catch-up exchange: a recovered process asks its peers for the
consensus decisions (and message payloads) it missed while down, applies them
in instance order -- so its delivery sequence stays a prefix of the group's
total order -- and then resumes proposing from the group's frontier.

Two practical details follow the paper:

* **Aggregation** -- all the messages pending when an instance starts are
  proposed together, so one consensus execution can order many messages (this
  is what keeps the algorithm usable under high load).
* **Coordinator re-numbering** (optional, on by default) -- the proposal is
  tagged with the identifier of the proposing process; once an instance
  decides, every process rotates the coordinator order of subsequent
  instances so that the decided proposer becomes the round-1 coordinator.
  This makes crashed processes stop being coordinators after a crash, which
  is the optimisation Section 7 of the paper describes for the crash-steady
  scenario.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Set, Tuple

from repro.core.consensus import ConsensusService
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.types import AtomicBroadcast, BroadcastID
from repro.sim.process import SimProcess

_DATA_TAG = "AB_DATA"
_CATCHUP_REQ = "AB_CATCHUP_REQ"
_CATCHUP_RESP = "AB_CATCHUP_RESP"
_PAYLOAD_REQ = "AB_PAYLOAD_REQ"
_PAYLOAD_RESP = "AB_PAYLOAD_RESP"


class FDAtomicBroadcast(AtomicBroadcast):
    """Chandra-Toueg atomic broadcast over unreliable failure detectors."""

    protocol = "abcast"

    def __init__(
        self,
        process: SimProcess,
        rbcast: ReliableBroadcast,
        consensus: ConsensusService,
        renumber_coordinators: bool = True,
        pipeline_depth: int = 2,
    ) -> None:
        super().__init__(process)
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.rbcast = rbcast
        self.consensus = consensus
        self.renumber_coordinators = renumber_coordinators
        #: Maximum number of consensus instances allowed in flight at once.
        #: 1 reproduces the strictly sequential textbook behaviour; 2 (the
        #: default) lets a new instance start while the previous one is still
        #: deciding, which is what keeps the transient latency after a crash
        #: down to a single recovery.
        self.pipeline_depth = pipeline_depth
        self.participants: Tuple[int, ...] = tuple(range(process.network.n))

        self._payloads: Dict[BroadcastID, Any] = {}
        self._rb_uid_of: Dict[BroadcastID, Tuple[int, int]] = {}
        self._pending: Set[BroadcastID] = set()
        self._ordered: Set[BroadcastID] = set()
        self._decisions: Dict[int, Tuple[int, Tuple[BroadcastID, ...]]] = {}
        self._last_decided = 0
        self._next_delivery = 1
        self._highest_proposed = 0
        self._inflight_proposals: Dict[int, Set[BroadcastID]] = {}
        # Crash-recovery bookkeeping: whether this process ever recovered
        # (payload re-requests are only needed -- and only allowed -- then),
        # and which payloads it already asked its peers for.
        self._recovered_once = False
        self._requested_payloads: Set[BroadcastID] = set()
        #: Diagnostics: number of consensus instances this process proposed in.
        self.consensus_started = 0

        rbcast.add_listener(self._on_rbcast_delivery)
        consensus.add_decision_listener(self._on_decision)
        consensus.add_unknown_instance_listener(self._on_unknown_instance)

    # ------------------------------------------------------------------ API

    def broadcast(self, payload: Any) -> BroadcastID:
        """A-broadcast ``payload`` to all processes."""
        broadcast_id = self._next_broadcast_id()
        self._notify_broadcast(broadcast_id, payload)
        self.rbcast.broadcast((_DATA_TAG, broadcast_id, payload))
        return broadcast_id

    def on_message(self, sender: int, body: Any) -> None:
        """Handle a catch-up message (the only direct messages of this protocol)."""
        kind = body[0]
        if kind == _CATCHUP_REQ:
            self._on_catchup_request(sender, body[1])
        elif kind == _CATCHUP_RESP:
            self._on_catchup_response(body[1], body[2], body[3])
        elif kind == _PAYLOAD_REQ:
            self._on_payload_request(sender, body[1])
        elif kind == _PAYLOAD_RESP:
            self._on_payload_response(body[1])
        else:
            raise RuntimeError(f"unexpected direct message to the FD abcast: {body!r}")

    # ------------------------------------------------------------------ recovery

    def on_recover(self) -> None:
        """Ask every peer for the decisions missed while this process was down.

        The request reaches back to the delivery frontier, not just the
        decision frontier: an instance may be decided locally while its
        payloads are still missing (they were dropped during the crash), and
        the catch-up responses are the only way to refetch them.
        """
        self._recovered_once = True
        self._requested_payloads.clear()  # allow re-requests after this recovery
        # Asking every peer trades a little duplicate traffic (n - 1 full
        # responses per recovery) for robustness: any single chosen peer may
        # itself be down right now.  At the paper's system sizes the cost is
        # negligible.
        others = [pid for pid in self.participants if pid != self.pid]
        if others:
            since = min(self._next_delivery - 1, self._last_decided)
            self.send(others, (_CATCHUP_REQ, since))

    def _on_catchup_request(self, sender: int, since: int) -> None:
        # Undecided messages ride along too: a DATA multicast sent while the
        # requester was down was dropped and -- its origin staying alive --
        # is never relayed again, so without this hand-over the requester
        # could not propose (or even learn of) the messages the group is
        # currently ordering.
        unordered = tuple(
            (bid, self._payloads[bid]) for bid in sorted(self._pending)
            if bid in self._payloads
        )
        if self._last_decided <= since and self._highest_proposed <= since and not unordered:
            return
        entries = []
        for k in range(since + 1, self._last_decided + 1):
            proposer, broadcast_ids = self._decisions[k]
            payloads = tuple(
                (bid, self._payloads[bid]) for bid in broadcast_ids if bid in self._payloads
            )
            entries.append((k, proposer, broadcast_ids, payloads))
        # The proposal frontier rides along so the recovered process also
        # joins instances that are open but *undecided*: their participants
        # may be parked waiting for the recovered process itself (e.g. as
        # the round-1 coordinator, which sends nothing until it proposes).
        self.send_one(
            sender,
            (_CATCHUP_RESP, tuple(entries), self._highest_proposed, unordered),
        )

    def _on_catchup_response(
        self, entries: Tuple, frontier: int = 0, unordered: Tuple = ()
    ) -> None:
        for broadcast_id, payload in unordered:
            self._payloads.setdefault(broadcast_id, payload)
            if broadcast_id not in self._ordered and not self.has_delivered(broadcast_id):
                self._pending.add(broadcast_id)
        for k, proposer, broadcast_ids, payloads in entries:
            for broadcast_id, payload in payloads:
                self._payloads.setdefault(broadcast_id, payload)
            if k not in self._decisions:
                self._decisions[k] = (proposer, tuple(broadcast_ids))
                self._ordered.update(broadcast_ids)
                self._pending.difference_update(broadcast_ids)
        while self._last_decided + 1 in self._decisions:
            self._last_decided += 1
        # Proposals left in flight across the crash would pin their messages
        # forever (their instances were decided without us): release them and
        # rejoin the pipeline at the group's frontier.
        for k in list(self._inflight_proposals):
            if k <= self._last_decided:
                claimed = self._inflight_proposals.pop(k)
                self._pending.update(claimed - self._ordered)
        if self._highest_proposed < self._last_decided:
            self._highest_proposed = self._last_decided
        self._try_deliver()
        self._maybe_start_consensus(join_up_to=frontier)

    def _request_missing_payloads(self, broadcast_ids) -> None:
        """Ask the peers for payloads a decision references but we never got.

        Only armed after a recovery: in crash-free runs every payload arrives
        by reliable broadcast before (or shortly after) its decision, but a
        DATA multicast sent while this process was down is dropped and -- the
        origin being alive and trusted -- never relayed.  An instance that
        was still undecided when the catch-up responses were built can
        therefore decide later with payloads only this path can recover.
        """
        if not self._recovered_once:
            return
        missing = tuple(
            bid for bid in broadcast_ids if bid not in self._requested_payloads
        )
        if not missing:
            return
        self._requested_payloads.update(missing)
        others = [pid for pid in self.participants if pid != self.pid]
        if others:
            self.send(others, (_PAYLOAD_REQ, missing))

    def _on_payload_request(self, sender: int, broadcast_ids: Tuple) -> None:
        entries = tuple(
            (bid, self._payloads[bid]) for bid in broadcast_ids if bid in self._payloads
        )
        if entries:
            self.send_one(sender, (_PAYLOAD_RESP, entries))

    def _on_payload_response(self, entries: Tuple) -> None:
        for broadcast_id, payload in entries:
            self._payloads.setdefault(broadcast_id, payload)
        self._try_deliver()

    # ------------------------------------------------------------------ data dissemination

    def _on_rbcast_delivery(self, origin: int, rb_uid: Tuple[int, int], payload: Any) -> None:
        if not isinstance(payload, tuple) or not payload or payload[0] != _DATA_TAG:
            return
        _tag, broadcast_id, data = payload
        if broadcast_id in self._payloads:
            return
        self._payloads[broadcast_id] = data
        self._rb_uid_of[broadcast_id] = rb_uid
        if broadcast_id not in self._ordered and not self.has_delivered(broadcast_id):
            self._pending.add(broadcast_id)
        self._try_deliver()
        self._maybe_start_consensus()

    # ------------------------------------------------------------------ consensus plumbing

    def _cid(self, k: int) -> Hashable:
        return ("ab", k)

    def _unproposed_pending(self) -> Set[BroadcastID]:
        """Pending messages not already part of one of our in-flight proposals."""
        claimed: Set[BroadcastID] = set()
        for ids in self._inflight_proposals.values():
            claimed.update(ids)
        return self._pending - claimed

    def _maybe_start_consensus(self, join_up_to: int = 0) -> None:
        """Open the next consensus instances this process should propose in.

        ``join_up_to`` (the proposal frontier a catch-up response reported)
        forces a proposal -- empty if nothing is pending -- in every
        instance the group already opened: an undecided instance whose
        round-1 coordinator is this recovered process makes no progress
        until that coordinator proposes.
        """
        while True:
            k = self._highest_proposed + 1
            if k > self._last_decided + self.pipeline_depth:
                return
            fresh = self._unproposed_pending()
            need = bool(fresh) or k <= join_up_to
            need = need or self.consensus.has_buffered(self._cid(k))
            if not need:
                # An empty instance is still worth proposing when other
                # processes already started a later eligible instance:
                # consensus numbers must be exhausted in order.
                need = any(
                    self.consensus.has_buffered(self._cid(j))
                    for j in range(k + 1, self._last_decided + self.pipeline_depth + 1)
                )
            if not need:
                return
            proposal_ids = tuple(sorted(fresh))
            proposal = (self.pid, proposal_ids)
            self._obs.observe("abcast.proposal_size", len(proposal_ids))
            self._highest_proposed = k
            self._inflight_proposals[k] = set(proposal_ids)
            self.consensus_started += 1
            self.consensus.propose(
                self._cid(k),
                proposal,
                participants=self.participants,
                coordinator_order=self._coordinator_order_for(k),
            )

    def _coordinator_order_for(self, k: int) -> Tuple[int, ...]:
        """Coordinator rotation used by instance ``k``.

        With re-numbering enabled, the rotation starts at the proposer whose
        value was decided by instance ``k - pipeline_depth``: that decision is
        guaranteed to be known by every process that participates in ``k``
        (the pipeline never runs further ahead), so all of them use the same
        rotation.
        """
        if not self.renumber_coordinators:
            return self.participants
        anchor = k - self.pipeline_depth
        if anchor < 1 or anchor not in self._decisions:
            return self.participants
        return self._rotate_order(self._decisions[anchor][0])

    def _on_unknown_instance(self, cid: Hashable) -> None:
        if not isinstance(cid, tuple) or len(cid) != 2 or cid[0] != "ab":
            return
        if self._highest_proposed < cid[1] <= self._last_decided + self.pipeline_depth:
            self._maybe_start_consensus()

    def _on_decision(self, cid: Hashable, value: Any) -> None:
        if not isinstance(cid, tuple) or len(cid) != 2 or cid[0] != "ab":
            return
        k = cid[1]
        proposer, broadcast_ids = value
        self._decisions[k] = (proposer, tuple(broadcast_ids))
        self._ordered.update(broadcast_ids)
        for broadcast_id in broadcast_ids:
            # The decision fixes the message's place in the total order; the
            # instrumentation keeps only the earliest report per message.
            self._obs.abcast_sequenced(self.now, self.pid, broadcast_id)
        self._pending.difference_update(broadcast_ids)
        self._inflight_proposals.pop(k, None)
        while self._last_decided + 1 in self._decisions:
            self._last_decided += 1
        self._try_deliver()
        self._maybe_start_consensus()

    def _rotate_order(self, first: int) -> Tuple[int, ...]:
        if first not in self.participants:
            return self.participants
        index = self.participants.index(first)
        return self.participants[index:] + self.participants[:index]

    # ------------------------------------------------------------------ delivery

    def _try_deliver(self) -> None:
        while self._next_delivery in self._decisions:
            _proposer, broadcast_ids = self._decisions[self._next_delivery]
            missing = [bid for bid in broadcast_ids if bid not in self._payloads]
            if missing:
                # Wait for the payloads (they arrive by reliable broadcast; a
                # recovered process additionally re-requests ones whose DATA
                # was dropped while it was down); the delivery loop resumes
                # from _on_rbcast_delivery or _on_payload_response.
                self._request_missing_payloads(missing)
                return
            for broadcast_id in sorted(broadcast_ids):
                if self._deliver(broadcast_id, self._payloads[broadcast_id]):
                    rb_uid = self._rb_uid_of.get(broadcast_id)
                    if rb_uid is not None:
                        self.rbcast.mark_stable(rb_uid)
            self._next_delivery += 1
