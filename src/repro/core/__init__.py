"""Core algorithms of the paper.

* :mod:`repro.core.types` -- broadcast identifiers, views and the common
  :class:`~repro.core.types.AtomicBroadcast` interface.
* :mod:`repro.core.reliable_broadcast` -- efficient reliable broadcast (one
  multicast in the common case, relay on suspicion of the origin).
* :mod:`repro.core.consensus` -- Chandra-Toueg rotating-coordinator consensus
  for the failure detector class ``<>S``.
* :mod:`repro.core.fd_broadcast` -- the *FD algorithm*: Chandra-Toueg atomic
  broadcast built on a sequence of consensus instances.
* :mod:`repro.core.group_membership` -- the group membership service (view
  changes over consensus, view synchrony, rejoin of wrongly excluded
  processes, state transfer).
* :mod:`repro.core.sequencer_broadcast` -- the *GM algorithm*: fixed-sequencer
  uniform atomic broadcast reconfigured through group membership, plus its
  non-uniform variant.
"""

from repro.core.types import AtomicBroadcast, BroadcastID, View
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.consensus import ConsensusService
from repro.core.fd_broadcast import FDAtomicBroadcast
from repro.core.group_membership import GroupMembership
from repro.core.sequencer_broadcast import SequencerAtomicBroadcast

__all__ = [
    "AtomicBroadcast",
    "BroadcastID",
    "ConsensusService",
    "FDAtomicBroadcast",
    "GroupMembership",
    "ReliableBroadcast",
    "SequencerAtomicBroadcast",
    "View",
]
