"""The *GM algorithm*: fixed-sequencer uniform atomic broadcast.

Normal operation in a view (Fig. 1 of the paper):

1. the sender multicasts the message ``m`` to the members of the view;
2. the sequencer (the first member of the view) assigns a sequence number to
   ``m`` and multicasts it (``seqnum``);
3. every non-sequencer process that has both ``m`` and its sequence number
   acknowledges to the sequencer;
4. the sequencer waits for acknowledgements from a majority of the view,
   A-delivers ``m``, and multicasts a ``deliver`` message;
5. the other processes A-deliver ``m`` when they receive ``deliver``.

The ``seqnum``, ``ack`` and ``deliver`` messages carry *batches* of sequence
numbers: the sequencer orders, at once, every message that arrived while the
previous batch was in flight.  This is the aggregation mechanism the paper
highlights as essential under high load, and it makes the message pattern of
the GM algorithm identical to that of the FD algorithm in suspicion-free
runs.

Reconfiguration is delegated to :class:`repro.core.group_membership.GroupMembership`:
when a view change starts the broadcast layer freezes, hands over its
unstable messages, delivers the decided union before the new view is
installed, and restarts cleanly (resending its own not-yet-delivered
messages) in the new view.

The non-uniform variant discussed in Section 8 of the paper is available by
constructing the component with ``uniform=False``: processes then A-deliver
as soon as they know a message and its sequence number, skipping the
acknowledgement and deliver steps (two multicasts in total).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.group_membership import GroupMembership
from repro.core.types import AtomicBroadcast, BroadcastID, View
from repro.sim.process import SimProcess

_DATA = "DATA"
_SEQ = "SEQ"
_ACK = "ACK"
_DELIVER = "DELIVER"
_RETR_REQ = "RETR_REQ"
_RETR_RESP = "RETR_RESP"


class SequencerAtomicBroadcast(AtomicBroadcast):
    """Fixed-sequencer atomic broadcast reconfigured by group membership."""

    protocol = "abcast"

    def __init__(
        self,
        process: SimProcess,
        membership: GroupMembership,
        uniform: bool = True,
        pipeline_depth: int = 2,
    ) -> None:
        super().__init__(process)
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.membership = membership
        self.uniform = uniform
        #: Maximum number of batches the sequencer keeps in flight; mirrors
        #: the consensus pipeline depth of the FD algorithm so both algorithms
        #: generate the same message pattern under the same arrival pattern.
        self.pipeline_depth = pipeline_depth
        membership.set_broadcast_handler(self)

        self._payloads: Dict[BroadcastID, Any] = {}
        # Messages this process A-broadcast and has not seen delivered yet;
        # they are (re)multicast whenever a new view is installed.
        self._own_pending: Dict[BroadcastID, Any] = {}
        self._frozen = False
        self._future: Dict[Tuple[int, int], List[Tuple[int, Any]]] = {}

        # Per-view state (reset by _reset_view_state).  Messages are tagged
        # with the totally ordered view identity (epoch, view_id), so views
        # of different reformation epochs can never be confused even when
        # their view_id values collide.
        self._view_id = membership.view.vid
        self._seq_counter = 0
        self._batch_counter = 0
        self._unsequenced: List[BroadcastID] = []
        self._outstanding: Set[int] = set()
        self._ready_batches: Set[int] = set()
        self._next_batch_to_complete = 1
        self._batch_entries: Dict[int, Tuple[Tuple[int, BroadcastID], ...]] = {}
        self._batch_acks: Dict[int, Set[int]] = {}
        self._batch_delivered: Set[int] = set()
        self._deliverable: Set[int] = set()
        self._acked_batches: Set[int] = set()
        self._next_batch_to_deliver = 1
        self._assignments: Dict[BroadcastID, int] = {}
        self._unstable: Dict[BroadcastID, Optional[int]] = {}
        self._stable_watermark = 0
        self._batch_of: Dict[BroadcastID, int] = {}
        self._requested_retransmit: Set[BroadcastID] = set()

        #: Diagnostics.
        self.batches_sequenced = 0

    # ------------------------------------------------------------------ helpers

    @property
    def view(self) -> View:
        """The current view according to the membership service."""
        return self.membership.view

    def _members(self) -> Tuple[int, ...]:
        return self.view.members

    def _other_members(self) -> List[int]:
        return [m for m in self._members() if m != self.pid]

    def _is_sequencer(self) -> bool:
        return self.membership.is_sequencer()

    def _sequencer(self) -> int:
        return self.view.sequencer

    def _operational(self) -> bool:
        return self.membership.is_member() and not self._frozen

    # ------------------------------------------------------------------ API

    def broadcast(self, payload: Any) -> BroadcastID:
        """A-broadcast ``payload`` to the group."""
        broadcast_id = self._next_broadcast_id()
        self._notify_broadcast(broadcast_id, payload)
        self._payloads[broadcast_id] = payload
        self._own_pending[broadcast_id] = payload
        if self._operational():
            self.send(list(self._members()), (_DATA, self._view_id, broadcast_id, payload))
        # Otherwise the message is buffered and multicast when the next view
        # is installed (or when this process rejoins the group).
        return broadcast_id

    # ------------------------------------------------------------------ message dispatch

    def on_message(self, sender: int, body: Any) -> None:
        """Dispatch a sequencer-broadcast protocol message."""
        kind = body[0]
        view_id = body[1]
        if kind == _DATA:
            # Payloads are always worth recording, whatever the view.
            self._record_payload(body[2], body[3])
        if view_id > self._view_id:
            self._future.setdefault(view_id, []).append((sender, body))
            return
        if view_id < self._view_id:
            if sender not in self._members():
                self.membership.report_stale_sender(sender, view_id)
            return
        if not self.membership.is_member():
            return
        if self._frozen and kind in (_SEQ, _ACK, _DELIVER):
            # During a view change the protocol is frozen; everything is
            # reconciled through the view-change delivery set.
            return

        if kind == _DATA:
            self._on_data(sender, body[2], body[3])
        elif kind == _SEQ:
            self._on_seq(sender, body[2], body[3], body[4])
        elif kind == _ACK:
            self._on_ack(sender, body[2])
        elif kind == _DELIVER:
            self._on_deliver(sender, body[2], body[3])
        elif kind == _RETR_REQ:
            self._on_retransmit_request(sender, body[2])
        elif kind == _RETR_RESP:
            self._on_retransmit_response(sender, body[2])
        else:
            raise ValueError(f"unexpected sequencer broadcast message {kind!r}")

    # ------------------------------------------------------------------ data / sequencing

    def _record_payload(self, broadcast_id: BroadcastID, payload: Any) -> None:
        if payload is None:
            return
        if broadcast_id not in self._payloads:
            self._payloads[broadcast_id] = payload

    def _on_data(self, sender: int, broadcast_id: BroadcastID, payload: Any) -> None:
        self._record_payload(broadcast_id, payload)
        if broadcast_id not in self._unstable and not self.has_delivered(broadcast_id):
            self._unstable.setdefault(broadcast_id, self._assignments.get(broadcast_id))
        if self._is_sequencer():
            if (
                broadcast_id not in self._assignments
                and not self.has_delivered(broadcast_id)
                and broadcast_id not in self._unsequenced
            ):
                self._unsequenced.append(broadcast_id)
            self._maybe_start_batch()
        else:
            # A payload that was missing for a known batch may now unblock an
            # acknowledgement or a delivery.
            self._try_ack_known_batches()
            self._try_deliver_batches()

    def _maybe_start_batch(self) -> None:
        if not self._is_sequencer() or not self._operational():
            return
        if self.uniform and len(self._outstanding) >= self.pipeline_depth:
            return
        if not self._unsequenced:
            return
        self._batch_counter += 1
        batch_id = self._batch_counter
        entries = []
        for broadcast_id in self._unsequenced:
            self._seq_counter += 1
            entries.append((self._seq_counter, broadcast_id))
            self._assignments[broadcast_id] = self._seq_counter
            self._unstable[broadcast_id] = self._seq_counter
            self._batch_of[broadcast_id] = batch_id
            self._obs.abcast_sequenced(self.now, self.pid, broadcast_id)
        self._unsequenced = []
        entries = tuple(entries)
        self._obs.observe("abcast.batch_size", len(entries))
        self._batch_entries[batch_id] = entries
        self._batch_acks[batch_id] = {self.pid}
        self.batches_sequenced += 1
        others = self._other_members()
        if others:
            self.send(others, (_SEQ, self._view_id, batch_id, entries, self._stable_watermark))
        if self.uniform:
            self._outstanding.add(batch_id)
            self._maybe_complete_batch(batch_id)
        else:
            # Non-uniform variant: deliver as soon as the order is fixed.
            self._deliver_batch(batch_id)
            self._maybe_start_batch()

    def _on_seq(
        self,
        sender: int,
        batch_id: int,
        entries: Tuple[Tuple[int, BroadcastID], ...],
        watermark: int,
    ) -> None:
        if sender != self._sequencer():
            return
        if batch_id not in self._batch_entries:
            self._batch_entries[batch_id] = tuple(entries)
            for seqnum, broadcast_id in entries:
                self._assignments[broadcast_id] = seqnum
                self._batch_of[broadcast_id] = batch_id
                self._obs.abcast_sequenced(self.now, self.pid, broadcast_id)
                if not self.has_delivered(broadcast_id):
                    self._unstable[broadcast_id] = seqnum
        self._apply_stability(watermark)
        if self.uniform:
            self._try_ack_known_batches()
        else:
            self._deliverable.add(batch_id)
            self._try_deliver_batches()

    def _try_ack_known_batches(self) -> None:
        if self._is_sequencer() or not self.uniform or not self._operational():
            return
        for batch_id in sorted(self._batch_entries):
            if batch_id in self._acked_batches:
                continue
            entries = self._batch_entries[batch_id]
            missing = [bid for _seq, bid in entries if bid not in self._payloads]
            if missing:
                self._request_retransmit(missing)
                continue
            self._acked_batches.add(batch_id)
            self.send_one(self._sequencer(), (_ACK, self._view_id, batch_id))

    def _on_ack(self, sender: int, batch_id: int) -> None:
        if not self._is_sequencer():
            return
        acks = self._batch_acks.setdefault(batch_id, set())
        acks.add(sender)
        self._update_stability()
        self._maybe_complete_batch(batch_id)

    def _maybe_complete_batch(self, batch_id: int) -> None:
        if not self.uniform or batch_id not in self._outstanding:
            return
        acks = self._batch_acks.get(batch_id, set())
        members = set(self._members())
        if len(acks & members) < self.view.majority():
            return
        self._ready_batches.add(batch_id)
        # Batches are completed strictly in order so that every process
        # A-delivers in the sequence-number order.
        while self._next_batch_to_complete in self._ready_batches:
            completing = self._next_batch_to_complete
            self._deliver_batch(completing)
            others = self._other_members()
            if others:
                self.send(
                    others, (_DELIVER, self._view_id, completing, self._stable_watermark)
                )
            self._outstanding.discard(completing)
            self._ready_batches.discard(completing)
            self._next_batch_to_complete += 1
        self._maybe_start_batch()

    def _on_deliver(self, sender: int, batch_id: int, watermark: int) -> None:
        if sender != self._sequencer():
            return
        self._deliverable.add(batch_id)
        self._apply_stability(watermark)
        self._try_deliver_batches()

    # ------------------------------------------------------------------ delivery

    def _deliver_batch(self, batch_id: int) -> None:
        entries = self._batch_entries.get(batch_id, ())
        for _seqnum, broadcast_id in sorted(entries):
            payload = self._payloads.get(broadcast_id)
            self._deliver_message(broadcast_id, payload)
        self._batch_delivered.add(batch_id)

    def _try_deliver_batches(self) -> None:
        while True:
            batch_id = self._next_batch_to_deliver
            if self._is_sequencer() and self.uniform:
                # The sequencer delivers through _maybe_complete_batch.
                return
            if batch_id not in self._deliverable or batch_id not in self._batch_entries:
                return
            entries = self._batch_entries[batch_id]
            missing = [bid for _seq, bid in entries if bid not in self._payloads]
            if missing:
                self._request_retransmit(missing)
                return
            self._deliver_batch(batch_id)
            self._next_batch_to_deliver = batch_id + 1

    def _deliver_message(self, broadcast_id: BroadcastID, payload: Any) -> None:
        if self._deliver(broadcast_id, payload):
            self._own_pending.pop(broadcast_id, None)

    # ------------------------------------------------------------------ retransmissions

    def _request_retransmit(self, broadcast_ids: Iterable[BroadcastID]) -> None:
        missing = tuple(
            bid for bid in broadcast_ids if bid not in self._requested_retransmit
        )
        if not missing or self._is_sequencer():
            return
        self._requested_retransmit.update(missing)
        self.send_one(self._sequencer(), (_RETR_REQ, self._view_id, missing))

    def _on_retransmit_request(self, sender: int, broadcast_ids: Tuple[BroadcastID, ...]) -> None:
        entries = tuple(
            (bid, self._payloads[bid]) for bid in broadcast_ids if bid in self._payloads
        )
        if entries:
            self.send_one(sender, (_RETR_RESP, self._view_id, entries))

    def _on_retransmit_response(self, sender: int, entries: Tuple) -> None:
        for broadcast_id, payload in entries:
            self._record_payload(broadcast_id, payload)
        self._try_ack_known_batches()
        self._try_deliver_batches()

    # ------------------------------------------------------------------ stability

    def _update_stability(self) -> None:
        """Advance the stable watermark: batches acknowledged by all members."""
        members = set(self._members())
        watermark = self._stable_watermark
        while True:
            next_batch = watermark + 1
            if next_batch not in self._batch_entries:
                break
            acks = self._batch_acks.get(next_batch, set())
            if not members.issubset(acks):
                break
            watermark = next_batch
        if watermark != self._stable_watermark:
            self._stable_watermark = watermark
            self._apply_stability(watermark)

    def _apply_stability(self, watermark: int) -> None:
        if watermark <= 0:
            return
        self._stable_watermark = max(self._stable_watermark, watermark)
        for broadcast_id in list(self._unstable):
            batch = self._batch_of.get(broadcast_id)
            if batch is not None and batch <= self._stable_watermark:
                del self._unstable[broadcast_id]

    # ------------------------------------------------------------------ group membership hooks

    def collect_unstable(self) -> Tuple[Tuple[BroadcastID, Any, Optional[int]], ...]:
        """Unstable messages of the current view, as (id, payload, seqnum)."""
        entries = []
        for broadcast_id, seqnum in sorted(self._unstable.items()):
            payload = self._payloads.get(broadcast_id)
            if payload is None:
                # Never advertise a message we cannot provide the payload of.
                continue
            entries.append((broadcast_id, payload, seqnum))
        return tuple(entries)

    def on_view_change_started(self) -> None:
        """Freeze normal operation while the view change runs."""
        self._frozen = True

    def on_member_recovered(self) -> None:
        """Re-advertise acknowledged-but-undelivered messages after a crash.

        A batch becomes stable once *every* member acknowledged it, and
        stability removes its messages from all unstable sets.  A process
        that acknowledged a batch and then crashed before the corresponding
        DELIVER arrived therefore holds sequenced messages that are in
        nobody's unstable set: without this hook its resync view change
        would decide a union missing them and its delivery log would resume
        mid-sequence.  Having acknowledged, the process knows the payload
        and sequence number locally, so putting them back into its own
        unstable set is enough for the SYNC it is about to send to cover
        the gap.  The group membership layer calls this on recovery, before
        it collects this layer's unstable set for the resync SYNC.
        """
        for broadcast_id, seqnum in self._assignments.items():
            if broadcast_id in self._unstable or self.has_delivered(broadcast_id):
                continue
            if broadcast_id not in self._payloads:
                continue
            self._unstable[broadcast_id] = seqnum

    def deliver_view_change(self, entries: Tuple) -> None:
        """Deliver the decided union of unstable messages (view synchrony).

        The union also covers crash-recovered members: a recovered process
        freezes this layer before any post-recovery stability update can
        reach it, so everything it missed while down is either still in
        some member's advertised unstable set or -- if it acknowledged the
        batch itself before crashing -- re-added to its own unstable set by
        :meth:`on_member_recovered` before the resync SYNC goes out.
        Nothing it has not delivered can have left every sync.
        """
        with_seqnum = sorted(
            (entry for entry in entries if entry[2] is not None), key=lambda e: e[2]
        )
        without_seqnum = sorted(
            (entry for entry in entries if entry[2] is None), key=lambda e: e[0]
        )
        for broadcast_id, payload, _seqnum in list(with_seqnum) + list(without_seqnum):
            self._record_payload(broadcast_id, payload)
            known_payload = self._payloads.get(broadcast_id, payload)
            if known_payload is None:
                continue
            self._deliver_message(broadcast_id, known_payload)

    def on_view_installed(self, view: View) -> None:
        """Reset the per-view protocol state and restart in ``view``."""
        self._view_id = view.vid
        self._frozen = False
        self._seq_counter = 0
        self._batch_counter = 0
        self._unsequenced = []
        self._outstanding = set()
        self._ready_batches = set()
        self._next_batch_to_complete = 1
        self._batch_entries = {}
        self._batch_acks = {}
        self._batch_delivered = set()
        self._deliverable = set()
        self._acked_batches = set()
        self._next_batch_to_deliver = 1
        self._assignments = {}
        self._unstable = {}
        self._stable_watermark = 0
        self._batch_of = {}
        self._requested_retransmit = set()
        # Re-multicast our own messages that are not delivered yet: they may
        # have been lost in the view change (or never sent if we were frozen
        # or excluded when they were A-broadcast).
        if self.membership.is_member():
            for broadcast_id, payload in sorted(self._own_pending.items()):
                self.send(
                    list(view.members), (_DATA, self._view_id, broadcast_id, payload)
                )
        self._replay_future(view.vid)

    def delivered_log_since(self, index: int) -> Tuple[Tuple[BroadcastID, Any], ...]:
        """Suffix of the delivery log, used to answer state transfer requests."""
        return tuple(self.delivered[index:])

    def apply_state(self, entries: Tuple) -> None:
        """Apply a state transfer: deliver every missed message in order."""
        for broadcast_id, payload in entries:
            self._record_payload(broadcast_id, payload)
            self._deliver_message(broadcast_id, payload)

    def _replay_future(self, view_id: Tuple[int, int]) -> None:
        for sender, body in self._future.pop(view_id, []):
            self.on_message(sender, body)
