"""Group membership service.

The service maintains the *view* of the group (the ordered list of processes
currently considered correct) and guarantees that members see the same
sequence of views, with View Synchrony and Same View Delivery for the atomic
broadcast built on top of it.

View changes follow the algorithm the paper describes (Section 4.3):

1. a process that suspects a member (or learns of a join request) starts a
   view change by multicasting a ``VIEW_CHANGE`` message to the members of
   the current view;
2. as soon as a process learns about the view change it multicasts its
   *unstable* messages (``SYNC``);
3. once it has received the unstable messages from all the members it does
   not suspect (and from at least a majority), it proposes the pair
   ``(new membership, union of unstable messages)`` to a consensus instance
   run among the members of the current view;
4. when consensus decides ``(P', U')``, every participant first delivers the
   messages of ``U'`` it has not delivered yet, then installs ``P'`` as the
   next view.

Correct processes that were wrongly excluded rejoin: they send a join request
to the members they know of, a member includes them in the next view change,
and the rejoining process synchronises its state with a state transfer (it
asks a member for the messages it missed while excluded) before resuming
normal operation -- exactly the scheme of Section 4.3 of the paper.

Crash *recovery* (beyond the paper's crash-stop model) combines both
mechanisms.  A process that recovers while it still believes it is a member
starts a view change in its current view and participates fully -- it sends
its ``SYNC`` (asking peers to retransmit theirs) and takes part in the
consensus, which keeps the view change live even when every other member is
also recovering; when the new view is decided it installs it like any other
member, the view-synchrony union covering everything it missed (nothing a
member has not delivered can be stable, because stability requires its own
acknowledgement).  A process that recovers after the group already excluded
it -- or whose restarted view change turns out to be stale because the group
moved on -- re-enters through the join protocol instead: members answer its
stale messages with the current view (if it is still a member of it) or a
not-member notification, and the join protocol's state transfer replays the
log suffix it missed before it operates again.

Group reformation (beyond the paper)
------------------------------------

The view-change protocol above shares the paper's fundamental liveness
limit: the consensus of step 3 runs among the members of the *current view*,
so once wrong suspicions have shrunk the installed view, a single real crash
inside it can leave the view without a majority of alive members -- and then
no view change can ever decide, even though a global majority of processes
is alive.  The *reformation* path restores liveness:

* **Trigger.**  A member whose view change makes no progress for
  ``reformation_timeout`` ms proposes a successor view in a consensus
  instance ``("reform", epoch + 1)`` scoped to the **full static process
  set** (every process of the system, members or not), which any global
  majority of alive processes can decide.  Its proposal carries the
  candidate membership (every process its failure detector trusts), and the
  union of the unstable messages it collected in the stalled view change
  (view synchrony for the survivors).  Non-members that hear messages of a
  reformation instance join it through the consensus service's
  unknown-instance notification, proposing their own candidate.

* **Fence.**  Views carry an *epoch* (see :class:`repro.core.types.View`);
  view identities are totally ordered by ``(epoch, view_id)``.  The decided
  reformation view bumps the epoch, so it supersedes any view the old epoch
  can still produce -- in particular a *late normal view change* whose
  consensus decides after the reformation: processes that installed the
  reformed view ignore the stale decision (its view identity no longer
  matches theirs), and a loser that installed the stale view is told
  ``NOT_MEMBER`` / detected as stale the moment it contacts a reformed
  member, falling back to the existing join-and-state-transfer resync path.

* **Rejoin.**  Reformed members that were participating in the origin view
  install the decided view directly (after delivering the unstable union);
  every other process named in the reformed membership re-enters through
  the join protocol, whose state transfer replays the whole delivered-log
  suffix it missed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.consensus import ConsensusService
from repro.core.types import View
from repro.sim.process import Component, SimProcess

ViewListener = Callable[[View], None]

#: A view identity: the totally ordered pair ``(epoch, view_id)``.
ViewId = Tuple[int, int]

_VIEW_CHANGE = "VIEW_CHANGE"
_SYNC = "SYNC"
_JOIN_REQ = "JOIN_REQ"
_VIEW_INSTALL = "VIEW_INSTALL"
_STATE_REQ = "STATE_REQ"
_STATE_RESP = "STATE_RESP"
_NOT_MEMBER = "NOT_MEMBER"

#: Process states.
MEMBER = "member"
VIEW_CHANGE_IN_PROGRESS = "view_change"
EXCLUDED = "excluded"
JOINING = "joining"


class GroupMembership(Component):
    """Primary-partition group membership (protocol ``"gm"``)."""

    protocol = "gm"

    def __init__(
        self,
        process: SimProcess,
        consensus: ConsensusService,
        initial_members: Optional[Sequence[int]] = None,
        join_retry_interval: float = 500.0,
        reformation_timeout: Optional[float] = None,
        view_change_revive_after: float = 50.0,
    ) -> None:
        super().__init__(process)
        self.consensus = consensus
        members = tuple(initial_members) if initial_members is not None else tuple(
            range(process.network.n)
        )
        self._view = View(0, members)
        self._last_known_view = self._view
        self._status = MEMBER if self.pid in members else EXCLUDED
        self.join_retry_interval = join_retry_interval
        #: How long a view change may stall before this process proposes a
        #: group reformation over the full static process set; ``None``
        #: disables the reformation path entirely (the paper's protocol).
        self.reformation_timeout = reformation_timeout
        #: How long a view change must have been stalled before a trust
        #: transition of a silent co-member triggers a re-announcement
        #: (see :meth:`_on_suspicion_change`).  Well above any healthy
        #: view change's completion time, well below any partition worth
        #: surviving; partitions shorter than this (but longer than the
        #: detection time) can still strand a plain-``gm`` minority -- the
        #: reformation timer covers that window under ``gm-reform``.
        self.view_change_revive_after = view_change_revive_after

        self._handler = None  # the atomic broadcast layer (set by set_broadcast_handler)
        self._view_listeners: List[ViewListener] = []

        # Per-view-change state (reset whenever a view is installed).
        self._vc_sent = False
        self._sync_sent = False
        self._proposed = False
        self._syncs: Dict[int, Tuple] = {}
        self._joiners_seen: Set[int] = set()
        self._vc_started_at = 0.0
        #: Whether this process is reconciling after a crash recovery: it
        #: participates in view changes but must re-enter the decided view
        #: through a state transfer instead of installing it directly.
        self._recovering = False
        #: Highest reformation epoch this process has proposed in.
        self._reform_epoch_proposed = 0

        self._pending_joins: Set[int] = set()
        self._future: Dict[ViewId, List[Tuple[int, Any]]] = {}
        self._not_member_notified: Set[Tuple[int, ViewId]] = set()
        self._join_attempts = 0
        #: Diagnostics: number of views installed by this process.
        self.views_installed = 0
        #: Diagnostics: number of reformations this process proposed.
        self.reformations_proposed = 0

        consensus.add_decision_listener(self._on_decision)
        consensus.add_unknown_instance_listener(self._on_unknown_instance)

    # ------------------------------------------------------------------ wiring

    def set_broadcast_handler(self, handler: Any) -> None:
        """Register the atomic broadcast layer the service flushes/reconfigures.

        The handler must provide ``collect_unstable()``,
        ``on_view_change_started()``, ``deliver_view_change(entries)``,
        ``on_view_installed(view)``, ``delivered_log_since(index)``,
        ``apply_state(entries)`` and the ``delivered_count`` property.
        """
        self._handler = handler

    def add_view_listener(self, listener: ViewListener) -> None:
        """Subscribe to view installations: ``listener(view)``."""
        self._view_listeners.append(listener)

    # ------------------------------------------------------------------ queries

    @property
    def view(self) -> View:
        """The current view (the last view this process installed)."""
        return self._view

    @property
    def last_known_view(self) -> View:
        """The most recent view this process knows of (even if excluded from it)."""
        return self._last_known_view

    @property
    def status(self) -> str:
        """One of ``member``, ``view_change``, ``excluded``, ``joining``."""
        return self._status

    def is_member(self) -> bool:
        """Whether this process is currently an operational group member."""
        return self._status in (MEMBER, VIEW_CHANGE_IN_PROGRESS)

    def is_sequencer(self) -> bool:
        """Whether this process is the sequencer of the current view."""
        return self.is_member() and self._view.sequencer == self.pid

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Subscribe to the failure detector and react to existing suspicions.

        Some processes may already be suspected when the component starts
        (the crash-steady scenario crashes them before time zero); they must
        be excluded right away, exactly as if the suspicion had been raised
        after the start.
        """
        detector = self.process.failure_detector
        if detector is not None:
            detector.add_listener(self._on_suspicion_change)
            if self._status == MEMBER and any(
                detector.is_suspected(member)
                for member in self._view.members
                if member != self.pid
            ):
                self._start_view_change()

    def on_recover(self) -> None:
        """Reconcile with the group after a crash recovery.

        Still-a-member: start (or restart) a view change in the current view
        and take part in it normally.  This is sound because every message
        the process missed is covered by the resync view change: a message
        it never acknowledged is still in some member's unstable set (its
        batch cannot be stable without the acknowledgement), and a message
        it acknowledged before crashing is re-added to its *own* unstable
        set by the broadcast layer's ``on_member_recovered`` hook -- called
        below, before the resync SYNC collects the unstable set -- so the
        decided union contains it either way.  If the group
        moved on without this process, its stale view-change message is
        answered with the current view (state transfer) or a not-member
        notification (join protocol).  Already excluded (or mid-join):
        restart the join protocol.
        """
        self._recovering = True
        if self._status in (EXCLUDED, JOINING):
            self._status = EXCLUDED
            self._reset_view_change_state()
            self._attempt_join()
            return
        self._status = MEMBER
        self._reset_view_change_state()
        if self._handler is not None:
            recovered_hook = getattr(self._handler, "on_member_recovered", None)
            if recovered_hook is not None:
                recovered_hook()
        self._start_view_change(resync=True)

    # ------------------------------------------------------------------ failure detector

    def _suspects(self, pid: int) -> bool:
        detector = self.process.failure_detector
        return detector is not None and detector.is_suspected(pid)

    def _on_suspicion_change(self, pid: int, suspected: bool) -> None:
        if suspected:
            if self._status == MEMBER and pid in self._view.members:
                self._start_view_change()
            elif self._status == VIEW_CHANGE_IN_PROGRESS:
                # A new suspicion may complete the SYNC collection condition.
                self._maybe_propose()
        else:
            if self._status == MEMBER and pid in self._pending_joins:
                self._start_view_change()
            elif (
                self._status == VIEW_CHANGE_IN_PROGRESS
                and self._vc_sent
                and pid in self._view.members
                and pid not in self._syncs
                and self.now - self._vc_started_at >= self.view_change_revive_after
            ):
                # A co-member we never heard a SYNC from came back into
                # trust while the view change has been stalled well past
                # any healthy completion time: the peer was unreachable
                # (e.g. across a partition), so everything we multicast
                # meanwhile -- including the view change announcement
                # itself -- was dropped, and with no retransmission the
                # stall would be permanent on both sides.  Re-announce to
                # that peer alone, with the resync flag so a peer still in
                # this same view change repeats its SYNC.  A peer that
                # moved past this view instead answers with VIEW_INSTALL
                # or NOT_MEMBER, pulling us back through the join
                # protocol's state transfer.  The stall-age gate keeps the
                # QoS-mistake path byte-silent: a wrong suspicion's trust
                # returns within one mistake duration, while the view
                # change either already completed (status is MEMBER again)
                # or has been open only a few round trips.
                self.send_one(pid, (_VIEW_CHANGE, self._view.vid, True))
                self.send_one(pid, self._sync_message())

    # ------------------------------------------------------------------ messages

    def on_message(self, sender: int, body: Any) -> None:
        """Dispatch a group membership message."""
        kind = body[0]
        if kind == _VIEW_CHANGE:
            # body[2] (the resync flag) is absent in the legacy two-field form.
            self._on_view_change_msg(sender, body[1], len(body) > 2 and body[2])
        elif kind == _SYNC:
            self._on_sync(sender, body[1], body[2], body[3])
        elif kind == _JOIN_REQ:
            self._on_join_request(sender)
        elif kind == _VIEW_INSTALL:
            self._on_view_install_msg(sender, body[1], body[2])
        elif kind == _STATE_REQ:
            self._on_state_request(sender, body[1])
        elif kind == _STATE_RESP:
            self._on_state_response(sender, body[1], body[2], body[3])
        elif kind == _NOT_MEMBER:
            self._on_not_member(sender, body[1], body[2])
        else:
            raise ValueError(f"unexpected group membership message {kind!r}")

    # ------------------------------------------------------------------ view change

    def _start_view_change(self, resync: bool = False) -> None:
        """Enter the view change of the current view.

        ``resync`` is set by a crash-recovered member: it asks the other
        participants to retransmit their ``SYNC`` messages, because any sync
        multicast while this process was down was dropped by the network.
        """
        if self._status != MEMBER:
            return
        self._status = VIEW_CHANGE_IN_PROGRESS
        self._vc_started_at = self.now
        self._obs.view_change(self.now, self.pid, self._view.vid)
        if self._handler is not None:
            self._handler.on_view_change_started()
        if self.reformation_timeout is not None:
            self.set_timer(self.reformation_timeout, self._maybe_reform, self._view.vid)
        members = list(self._view.members)
        if not self._vc_sent:
            self._vc_sent = True
            self.send(members, (_VIEW_CHANGE, self._view.vid, resync))
        self._send_sync()

    def _sync_message(self) -> Tuple:
        """The SYNC message for the current view change."""
        unstable = ()
        if self._handler is not None:
            unstable = tuple(self._handler.collect_unstable())
        joiners = tuple(sorted(j for j in self._pending_joins if not self._suspects(j)))
        return (_SYNC, self._view.vid, unstable, joiners)

    def _send_sync(self) -> None:
        if self._sync_sent:
            return
        self._sync_sent = True
        self.send(list(self._view.members), self._sync_message())

    def _on_view_change_msg(self, sender: int, vid: ViewId, resync: bool) -> None:
        if vid != self._view.vid or not self.is_member():
            if vid > self._view.vid:
                self._future.setdefault(vid, []).append(
                    (sender, (_VIEW_CHANGE, vid, resync))
                )
            elif vid < self._view.vid and self.is_member():
                # A stale view change comes from a process that missed the
                # group's progress while it was down.  Point it at the
                # current view: a current member re-enters through a state
                # transfer, anyone else restarts the join protocol.
                if sender in self._view.members:
                    self.send_one(
                        sender, (_VIEW_INSTALL, self._view.vid, self._view.members)
                    )
                else:
                    self.report_stale_sender(sender, vid)
            return
        if self._status == MEMBER:
            self._start_view_change()
        elif resync and self._sync_sent and sender != self.pid:
            # A recovered member restarted this view change; our SYNC was
            # multicast while it was down and got dropped, so repeat it for
            # that member alone.
            self.send_one(sender, self._sync_message())

    def _on_sync(self, sender: int, vid: ViewId, entries: Tuple, joiners: Tuple) -> None:
        if vid != self._view.vid or not self.is_member():
            if vid > self._view.vid:
                self._future.setdefault(vid, []).append(
                    (sender, (_SYNC, vid, entries, joiners))
                )
            return
        if self._status == MEMBER:
            self._start_view_change()
        self._syncs[sender] = entries
        self._joiners_seen.update(joiners)
        self._maybe_propose()

    @staticmethod
    def _merge_unstable(sync_sets: Sequence[Tuple]) -> Tuple:
        """The deterministic union of several SYNC unstable sets."""
        union: Dict = {}
        for entries in sync_sets:
            for broadcast_id, payload, seqnum in entries:
                current_payload, current_seqnum = union.get(broadcast_id, (None, None))
                if current_payload is None:
                    current_payload = payload
                if current_seqnum is None:
                    current_seqnum = seqnum
                union[broadcast_id] = (current_payload, current_seqnum)
        return tuple(
            sorted(
                ((bid, payload, seqnum) for bid, (payload, seqnum) in union.items()),
                key=lambda entry: entry[0],
            )
        )

    def _maybe_propose(self) -> None:
        if self._status != VIEW_CHANGE_IN_PROGRESS or self._proposed:
            return
        view = self._view
        missing = [
            member
            for member in view.members
            if member not in self._syncs and not self._suspects(member)
        ]
        if missing:
            return
        if len(self._syncs) < view.majority():
            return
        self._proposed = True
        survivors = tuple(m for m in view.members if m in self._syncs)
        joiners = tuple(
            sorted(
                j
                for j in (self._joiners_seen | self._pending_joins)
                if j not in view.members and not self._suspects(j)
            )
        )
        new_members = survivors + joiners
        unstable = self._merge_unstable(list(self._syncs.values()))
        value = (self.pid, (new_members, unstable))
        self.consensus.propose(
            ("vc", view.vid),
            value,
            participants=view.members,
            coordinator_order=view.members,
        )

    # ------------------------------------------------------------------ reformation

    def _maybe_reform(self, vid: ViewId) -> None:
        """Timeout gate: reform if the view change of ``vid`` is still stalled."""
        if self._status != VIEW_CHANGE_IN_PROGRESS or self._view.vid != vid:
            return
        new_epoch = self._view.epoch + 1
        if self._reform_epoch_proposed >= new_epoch:
            return
        self.reformations_proposed += 1
        self._obs.reformation_proposed(self.now, self.pid, new_epoch)
        self._propose_reformation(new_epoch)

    def _propose_reformation(self, new_epoch: int) -> None:
        """Propose a successor view in the full-static-set reformation consensus.

        The candidate membership is every process the local failure detector
        currently trusts (always including this process); the unstable union
        covers the SYNCs collected in the stalled view change, which in the
        canonical blocked state is every *alive* member's sync -- the dead
        members' syncs are exactly the ones that can never arrive.
        """
        if self._reform_epoch_proposed >= new_epoch:
            return
        self._reform_epoch_proposed = new_epoch
        candidate = tuple(
            sorted(
                pid
                for pid in range(self.process.network.n)
                if pid == self.pid or not self._suspects(pid)
            )
        )
        if self._syncs:
            unstable = self._merge_unstable(list(self._syncs.values()))
        elif self._handler is not None:
            unstable = self._merge_unstable([tuple(self._handler.collect_unstable())])
        else:
            unstable = ()
        origin = self._view.vid if self.is_member() else self._last_known_view.vid
        # The proposal carries the proposer's delivered count: at decision
        # time it is the prefix fence that separates members who may deliver
        # the unstable union directly from members who must reconcile
        # through the state transfer first (see :meth:`_on_reform_decision`).
        delivered = self._handler.delivered_count if self._handler is not None else 0
        value = (self.pid, (origin, candidate, unstable, delivered))
        # Participants default to the full static process set: any global
        # majority of alive processes decides, members or not.
        self.consensus.propose(("reform", new_epoch), value)

    def _on_unknown_instance(self, cid: Hashable) -> None:
        """Join a reformation consensus another process started.

        The consensus service buffers messages of instances the local
        process has not proposed in; for a reformation instance that must
        not last (non-members may hold the deciding votes), so first contact
        triggers a local proposal with this process's own candidate.
        """
        if not (isinstance(cid, tuple) and len(cid) == 2 and cid[0] == "reform"):
            return
        new_epoch = cid[1]
        if not isinstance(new_epoch, int) or new_epoch <= self._view.epoch:
            return
        self._propose_reformation(new_epoch)

    def _on_reform_decision(self, new_epoch: int, value: Any) -> None:
        _proposer, (origin_vid, members, unstable, decided_prefix) = value
        if new_epoch <= self._view.epoch:
            return  # this process already lives in a reformed (or later) epoch
        new_view = View(origin_vid[1] + 1, tuple(members), new_epoch)
        if new_view.vid > self._last_known_view.vid:
            self._last_known_view = new_view
        if self.is_member():
            # Split-brain fence: installing the reformed view bumps our
            # epoch, so any late normal view-change decision of the old
            # epoch no longer matches our view identity and is discarded
            # by :meth:`_on_decision`.
            if self.pid in new_view.members:
                # Prefix fence.  Reform participants come from *diverged*
                # views -- after a transient partition the majority side has
                # installed later views and delivered messages that went
                # stable there, so they appear in nobody's unstable union.
                # A member that is behind the decided proposal (older view,
                # or shorter delivered prefix than the proposer's) would
                # skip those stable messages forever if it delivered the
                # union here.  It must instead re-enter through the
                # prefix-indexed state transfer, which replays everything
                # missed in order; members at or past the decided prefix
                # deliver the union directly (already-delivered entries are
                # deduplicated by the broadcast layer).
                local_prefix = (
                    self._handler.delivered_count if self._handler is not None else 0
                )
                if self._view.vid < origin_vid or local_prefix < decided_prefix:
                    self._become_excluded(new_view)
                    return
                if self._handler is not None:
                    self._handler.deliver_view_change(unstable)
                joiners = [m for m in new_view.members if m not in self._view.members]
                self._install_view(new_view, notify_joiners=joiners)
            else:
                # Same prefix rule as :meth:`_on_decision`: an excluded
                # process must not deliver the union (it may start past the
                # local delivery prefix); the rejoin state transfer replays
                # everything in order instead.
                self._become_excluded(new_view)
            return
        # Excluded or joining: the reformed view supersedes whatever this
        # process was trying to join; the running join-retry loop now
        # targets the reformed membership, and the state transfer replays
        # everything missed (including any unstable union).
        if self._status == JOINING:
            self._status = EXCLUDED

    def _on_decision(self, cid: Hashable, value: Any) -> None:
        if not isinstance(cid, tuple) or len(cid) != 2:
            return
        if cid[0] == "reform":
            self._on_reform_decision(cid[1], value)
            return
        if cid[0] != "vc":
            return
        vid = cid[1]
        if vid != self._view.vid or not self.is_member():
            # Covers the reformation fence: after a reformed view is
            # installed the old epoch's pending view-change decision no
            # longer matches the local view identity.
            return
        _proposer, (new_members, unstable) = value
        new_view = View(vid[1] + 1, tuple(new_members), vid[0])
        self._last_known_view = new_view
        joiners = [m for m in new_members if m not in self._view.members]
        if self.pid in new_members:
            if self._handler is not None:
                self._handler.deliver_view_change(unstable)
            self._install_view(new_view, notify_joiners=joiners)
        else:
            # Do NOT deliver the union when excluded: the decided union only
            # covers the *surviving* members' unstable sets, so for this
            # process it can start past its delivery prefix (e.g. after a
            # crash recovery, when a message it acknowledged went stable
            # while it was down).  Delivering it here would both break total
            # order locally and corrupt the join protocol's state transfer,
            # which sends the group log *since the joiner's delivered count*
            # and therefore requires the joiner's log to be a prefix of the
            # group's.  Everything is replayed, in order, by the state
            # transfer when this process rejoins.
            self._become_excluded(new_view)

    def _install_view(self, view: View, notify_joiners: Sequence[int] = ()) -> None:
        self._view = view
        self._last_known_view = view
        self._status = MEMBER
        self._recovering = False
        self.views_installed += 1
        self._obs.view_installed(self.now, self.pid, view)
        self._reset_view_change_state()
        self._pending_joins.difference_update(view.members)
        if self._handler is not None:
            self._handler.on_view_installed(view)
        for listener in list(self._view_listeners):
            listener(view)
        # The sequencer notifies the joiners.  If it crashed between syncing
        # and installing, the joiners' periodic join retries reach the other
        # members, which answer with the view directly (see
        # :meth:`_on_join_request`), so nobody is stranded.
        if notify_joiners and view.sequencer == self.pid:
            for joiner in notify_joiners:
                self.send_one(joiner, (_VIEW_INSTALL, view.vid, view.members))
        self._replay_future(view.vid)
        self._check_pending_triggers()

    def _become_excluded(self, new_view: View) -> None:
        self._status = EXCLUDED
        self._reset_view_change_state()
        self._attempt_join()

    def _reset_view_change_state(self) -> None:
        self._vc_sent = False
        self._sync_sent = False
        self._proposed = False
        self._syncs = {}
        self._joiners_seen = set()

    def _replay_future(self, vid: ViewId) -> None:
        for sender, body in self._future.pop(vid, []):
            self.on_message(sender, body)

    def _check_pending_triggers(self) -> None:
        if self._status != MEMBER:
            return
        suspected_member = any(
            self._suspects(member) for member in self._view.members if member != self.pid
        )
        joinable = any(not self._suspects(j) for j in self._pending_joins)
        if suspected_member or joinable:
            self._start_view_change()

    # ------------------------------------------------------------------ stale senders

    def report_stale_sender(self, sender: int, stale_vid: ViewId) -> None:
        """Tell ``sender`` it is no longer a member of the current view.

        Called by the atomic broadcast layer when it receives a message
        tagged with an old view from a process that is not in the current
        membership: the sender missed its own exclusion (for instance because
        it was excluded again while still performing a state transfer, or
        because it installed a stale view the reformation fence superseded)
        and needs to restart the join protocol.
        """
        if not self.is_member():
            return
        if sender in self._view.members or stale_vid >= self._view.vid:
            return
        key = (sender, self._view.vid)
        if key in self._not_member_notified:
            return
        self._not_member_notified.add(key)
        self.send_one(sender, (_NOT_MEMBER, self._view.vid, self._view.members))

    def _on_not_member(self, sender: int, vid: ViewId, members: Tuple[int, ...]) -> None:
        if vid <= self._view.vid or self.pid in members:
            return
        if self._status in (EXCLUDED, JOINING):
            self._last_known_view = View(vid[1], tuple(members), vid[0])
            return
        # We believed we were an (old-view) member but the group moved on
        # without us: fall back to the join protocol.
        self._status = EXCLUDED
        self._last_known_view = View(vid[1], tuple(members), vid[0])
        self._reset_view_change_state()
        self._attempt_join()

    # ------------------------------------------------------------------ joins

    def _on_join_request(self, sender: int) -> None:
        if not self.is_member():
            return
        if sender in self._view.members:
            # The joiner is already part of the current view (it missed the
            # VIEW_INSTALL notification, or is re-entering it after a crash
            # recovery): tell it directly; the state transfer catches it up.
            self.send_one(sender, (_VIEW_INSTALL, self._view.vid, self._view.members))
            return
        self._pending_joins.add(sender)
        if self._status == MEMBER and not self._suspects(sender):
            self._start_view_change()

    def _attempt_join(self) -> None:
        if self._status not in (EXCLUDED, JOINING):
            return
        self._join_attempts += 1
        members = [m for m in self._last_known_view.members if m != self.pid]
        if members:
            self.send(members, (_JOIN_REQ, self._last_known_view.vid))
        self.set_timer(self.join_retry_interval, self._attempt_join)

    def _on_view_install_msg(self, sender: int, vid: ViewId, members: Tuple[int, ...]) -> None:
        if vid <= self._view.vid or self.pid not in members:
            return
        if self._status not in (EXCLUDED, JOINING):
            # A member only receives a VIEW_INSTALL for a higher view when it
            # sent a stale view change after a crash recovery: the group
            # moved on while it was down.  Re-enter through the state
            # transfer, with the join retry timer guarding against the
            # responder failing mid-transfer.
            if not self._recovering:
                return
            self.set_timer(self.join_retry_interval, self._attempt_join)
        self._status = JOINING
        self._last_known_view = View(vid[1], tuple(members), vid[0])
        delivered = self._handler.delivered_count if self._handler is not None else 0
        self.send_one(sender, (_STATE_REQ, delivered))

    def _on_state_request(self, sender: int, since: int) -> None:
        if not self.is_member() or self._handler is None:
            return
        entries = tuple(self._handler.delivered_log_since(since))
        self.send_one(
            sender, (_STATE_RESP, self._view.vid, self._view.members, entries)
        )

    def _on_state_response(
        self, sender: int, vid: ViewId, members: Tuple[int, ...], entries: Tuple
    ) -> None:
        if self._status != JOINING:
            return
        if self.pid not in members or vid <= self._view.vid:
            return
        if self._handler is not None:
            self._handler.apply_state(entries)
        self._install_view(View(vid[1], tuple(members), vid[0]))
