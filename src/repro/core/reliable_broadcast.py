"""Efficient reliable broadcast.

The algorithm is the lazy one the paper refers to (inspired by Frolund and
Pedone's *Revisiting reliable broadcast*): the origin simply multicasts the
message, which costs one broadcast in the common case.  To tolerate a crash
of the origin, every process keeps delivered messages that are not yet known
to be *stable* and relays them to the whole group as soon as its failure
detector suspects the origin.  Clients mark messages stable (for instance
once the corresponding atomic broadcast has been delivered, or once the
corresponding consensus instance has decided) to bound the relay buffer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.process import Component, SimProcess

RBListener = Callable[[int, Tuple[int, int], Any], None]

_MSG = "RB"


class ReliableBroadcast(Component):
    """Reliable broadcast component (protocol name ``"rbcast"``)."""

    protocol = "rbcast"

    def __init__(self, process: SimProcess, group: Optional[Sequence[int]] = None) -> None:
        super().__init__(process)
        n = process.network.n
        #: Default destination group of :meth:`broadcast`.
        self.group: Tuple[int, ...] = tuple(group) if group is not None else tuple(range(n))
        self._listeners: List[RBListener] = []
        self._listener_snapshot: tuple = ()
        self._local_seq = 0
        self._delivered: set = set()
        # Delivered-but-not-stable messages kept for relaying, keyed by rb uid.
        self._unstable: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...], Any]] = {}
        # The same entries indexed by origin: the relay sweep runs on every
        # new suspicion and must only walk the suspect's messages, not the
        # whole buffer.  ``rb_uid[0]`` is the origin, so both stay in sync.
        self._unstable_by_origin: Dict[int, Dict[Tuple[int, int], Tuple[int, Tuple[int, ...], Any]]] = {}
        self._relayed_for: set = set()
        #: Diagnostic counter: number of relayed messages.
        self.relays = 0

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Subscribe to the failure detector to relay on suspicion."""
        detector = self.process.failure_detector
        if detector is not None:
            detector.add_listener(self._on_suspicion_change)

    # ------------------------------------------------------------------ API

    def add_listener(self, listener: RBListener) -> None:
        """Subscribe to R-deliveries: ``listener(origin, rb_uid, payload)``."""
        self._listeners.append(listener)
        self._listener_snapshot = tuple(self._listeners)

    def broadcast(self, payload: Any, group: Optional[Sequence[int]] = None) -> Tuple[int, int]:
        """R-broadcast ``payload`` to ``group`` (defaults to the full group).

        Returns the reliable-broadcast uid ``(origin, seq)``.  The origin is
        always part of the destination set so it R-delivers its own message.
        """
        self._local_seq += 1
        rb_uid = (self.pid, self._local_seq)
        destinations = tuple(group) if group is not None else self.group
        if self.pid not in destinations:
            destinations = destinations + (self.pid,)
        self.send(destinations, (_MSG, rb_uid, self.pid, destinations, payload))
        return rb_uid

    def mark_stable(self, rb_uid: Tuple[int, int]) -> None:
        """Drop ``rb_uid`` from the relay buffer (it is known to be stable)."""
        if self._unstable.pop(rb_uid, None) is not None:
            per_origin = self._unstable_by_origin.get(rb_uid[0])
            if per_origin is not None:
                per_origin.pop(rb_uid, None)

    def unstable_count(self) -> int:
        """Number of messages currently held for potential relaying."""
        return len(self._unstable)

    # ------------------------------------------------------------------ messages

    def on_message(self, sender: int, body: Any) -> None:
        """Handle an incoming reliable broadcast (original or relayed)."""
        tag, rb_uid, origin, destinations, payload = body
        if tag != _MSG:
            raise ValueError(f"unexpected reliable broadcast message {tag!r}")
        if rb_uid in self._delivered:
            return
        self._delivered.add(rb_uid)
        entry = (origin, tuple(destinations), payload)
        self._unstable[rb_uid] = entry
        self._unstable_by_origin.setdefault(origin, {})[rb_uid] = entry
        for listener in self._listener_snapshot:
            listener(origin, rb_uid, payload)

    # ------------------------------------------------------------------ relaying

    def _on_suspicion_change(self, pid: int, suspected: bool) -> None:
        if not suspected:
            return
        self._relay_messages_from(pid)

    def _relay_messages_from(self, origin: int) -> None:
        # Per-origin insertion order equals the origin's relative order in
        # the full buffer, so relays go out in the historical order.
        per_origin = self._unstable_by_origin.get(origin)
        if not per_origin:
            return
        relayed = self._relayed_for
        for rb_uid, (msg_origin, destinations, payload) in list(per_origin.items()):
            if rb_uid in relayed:
                continue
            relayed.add(rb_uid)
            self.relays += 1
            self.send(destinations, (_MSG, rb_uid, msg_origin, destinations, payload))
