"""Registry of protocol stacks and failure detector kinds.

The system assembler (:class:`repro.system.BroadcastSystem`) resolves its
layer composition here instead of hard-coding an ``if algorithm == ...``
chain.  Four stacks ship with the paper reproduction:

* ``"fd"``            -- reliable broadcast + consensus + Chandra-Toueg
  atomic broadcast (the *FD algorithm*),
* ``"gm"``            -- reliable broadcast + consensus + group membership +
  fixed-sequencer uniform atomic broadcast (the *GM algorithm*),
* ``"gm-nonuniform"`` -- the non-uniform variant of the GM algorithm
  (Section 8 extension),
* ``"gm-reform"``     -- the GM algorithm plus the timeout-gated group
  reformation layer, which restores liveness after an installed view loses
  its majority of alive members (beyond-paper extension).

and three failure detector kinds:

* ``"qos"``       -- the paper's abstract QoS model (Chen/Toueg/Aguilera),
* ``"heartbeat"`` -- a concrete, message-based heartbeat detector whose
  traffic loads the simulated network,
* ``"perfect"``   -- an idealised detector (no mistakes, constant detection).

A stack name may embed a failure detector variant after a slash
(``"fd/heartbeat"``, ``"gm/perfect"``): :func:`split_stack` normalises it to
the base stack plus an ``fd_kind``.  Users extend the system by registering
their own :class:`~repro.stacks.api.StackSpec` / fabric factory under a new
name -- no core module needs to change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.stacks.api import FabricFactory, StackLayers, StackSpec

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy/cycle-free
    from repro.stacks.api import FailureDetectorFabric

_STACKS: Dict[str, StackSpec] = {}
_FD_KINDS: Dict[str, FabricFactory] = {}


# ------------------------------------------------------------------ registration


def register_stack(spec: StackSpec, replace: bool = False) -> StackSpec:
    """Register ``spec`` under its name (error on collision unless ``replace``)."""
    if not replace and spec.name in _STACKS:
        raise ValueError(f"stack {spec.name!r} is already registered")
    _STACKS[spec.name] = spec
    return spec


def register_fd_kind(name: str, factory: FabricFactory, replace: bool = False) -> None:
    """Register a failure detector fabric factory under ``name``.

    The factory is called as ``factory(sim, network, rng, config)`` with the
    simulation kernel, the contention network, the system's random streams
    and the full :class:`~repro.system.SystemConfig`.
    """
    if "/" in name:
        raise ValueError(f"fd kind names cannot contain '/': {name!r}")
    if not replace and name in _FD_KINDS:
        raise ValueError(f"fd kind {name!r} is already registered")
    _FD_KINDS[name] = factory


def unregister_stack(name: str) -> None:
    """Remove a registered stack (testing hook; unknown names are a no-op)."""
    _STACKS.pop(name, None)


def unregister_fd_kind(name: str) -> None:
    """Remove a registered fd kind (testing hook; unknown names are a no-op)."""
    _FD_KINDS.pop(name, None)


# ------------------------------------------------------------------ lookup


def available_stacks() -> Tuple[str, ...]:
    """Registered base stack names, in registration order."""
    return tuple(_STACKS)


def available_fd_kinds() -> Tuple[str, ...]:
    """Registered failure detector kinds, in registration order."""
    return tuple(_FD_KINDS)


def stack_variants() -> Tuple[str, ...]:
    """Every selectable stack name, including the ``stack/fd_kind`` combos."""
    names = list(_STACKS)
    for stack in _STACKS:
        for kind in _FD_KINDS:
            if kind != _STACKS[stack].default_fd_kind:
                names.append(f"{stack}/{kind}")
    return tuple(names)


def get_stack(name: str) -> StackSpec:
    """The :class:`StackSpec` registered under ``name`` (base names only)."""
    try:
        return _STACKS[name]
    except KeyError:
        raise ValueError(
            f"unknown stack {name!r}; expected one of {available_stacks()}"
        ) from None


def get_fd_kind(name: str) -> FabricFactory:
    """The fabric factory registered under fd kind ``name``."""
    try:
        return _FD_KINDS[name]
    except KeyError:
        raise ValueError(
            f"unknown fd kind {name!r}; expected one of {available_fd_kinds()}"
        ) from None


def split_stack(name: str) -> Tuple[str, Optional[str]]:
    """Split a possibly slash-qualified stack name into ``(base, fd_kind)``.

    ``"fd"`` -> ``("fd", None)``; ``"fd/heartbeat"`` -> ``("fd", "heartbeat")``.
    Purely lexical -- validation happens in :func:`resolve`.
    """
    if "/" in name:
        base, _, kind = name.partition("/")
        return base, kind
    return name, None


def resolve(stack: str, fd_kind: Optional[str] = None) -> Tuple[StackSpec, str]:
    """Resolve a stack selection to ``(StackSpec, fd_kind)``.

    ``stack`` may embed an fd kind (``"fd/heartbeat"``); an explicitly passed
    ``fd_kind`` must then agree with it.  When neither names a kind, the
    stack's ``default_fd_kind`` applies.  Raises ``ValueError`` for unknown
    names or conflicting selections.
    """
    base, embedded = split_stack(stack)
    spec = get_stack(base)
    if embedded is not None:
        get_fd_kind(embedded)  # validate
        if fd_kind is not None and fd_kind != embedded:
            raise ValueError(
                f"conflicting failure detector selection: stack {stack!r} "
                f"embeds {embedded!r} but fd_kind={fd_kind!r} was passed"
            )
        return spec, embedded
    kind = fd_kind if fd_kind is not None else spec.default_fd_kind
    get_fd_kind(kind)  # validate
    return spec, kind


def create_fd_fabric(kind: str, sim, network, rng, config) -> "FailureDetectorFabric":
    """Instantiate the fabric of fd kind ``kind`` for one system."""
    return get_fd_kind(kind)(sim, network, rng, config)


# ------------------------------------------------------------------ builtin stacks


def _build_fd_stack(system, process, rbcast, consensus) -> StackLayers:
    """Layers of the FD algorithm: Chandra-Toueg atomic broadcast."""
    from repro.core.fd_broadcast import FDAtomicBroadcast

    return StackLayers(
        abcast=FDAtomicBroadcast(
            process,
            rbcast,
            consensus,
            renumber_coordinators=system.config.renumber_coordinators,
            pipeline_depth=system.config.pipeline_depth,
        )
    )


def _make_gm_builder(uniform: bool, reform: bool = False):
    """Layer builder of the GM algorithm (uniform or non-uniform delivery).

    ``reform`` arms the group-reformation path: the membership service is
    built with the configuration's ``reformation_timeout`` so a stalled view
    change escalates to a full-static-set reformation consensus instead of
    blocking forever after view-majority loss.
    """

    def _build_gm_stack(system, process, rbcast, consensus) -> StackLayers:
        from repro.core.group_membership import GroupMembership
        from repro.core.sequencer_broadcast import SequencerAtomicBroadcast

        membership = GroupMembership(
            process,
            consensus,
            join_retry_interval=system.config.join_retry_interval,
            reformation_timeout=(
                system.config.reformation_timeout if reform else None
            ),
        )
        abcast = SequencerAtomicBroadcast(
            process,
            membership,
            uniform=uniform,
            pipeline_depth=system.config.pipeline_depth,
        )
        return StackLayers(abcast=abcast, membership=membership)

    return _build_gm_stack


def _qos_fabric(sim, network, rng, config):
    from repro.failure_detectors.qos import QoSFailureDetectorFabric

    return QoSFailureDetectorFabric(
        sim, network, rng, config.fd, scan_interval=config.fd_scan_interval
    )


def _heartbeat_fabric(sim, network, rng, config):
    from repro.failure_detectors.heartbeat import HeartbeatFailureDetectorFabric

    return HeartbeatFailureDetectorFabric(sim, network, config.heartbeat)


def _perfect_fabric(sim, network, rng, config):
    from repro.failure_detectors.perfect import PerfectFailureDetectorFabric

    return PerfectFailureDetectorFabric(
        sim,
        network,
        rng,
        detection_time=config.fd.detection_time,
        scan_interval=config.fd_scan_interval,
    )


def _register_builtins() -> None:
    register_stack(
        StackSpec(
            name="fd",
            description=(
                "Chandra-Toueg atomic broadcast on consensus and unreliable "
                "failure detectors (the paper's FD algorithm)"
            ),
            build=_build_fd_stack,
        )
    )
    register_stack(
        StackSpec(
            name="gm",
            description=(
                "fixed-sequencer uniform atomic broadcast on a group "
                "membership service (the paper's GM algorithm)"
            ),
            build=_make_gm_builder(uniform=True),
            uses_membership=True,
        )
    )
    register_stack(
        StackSpec(
            name="gm-nonuniform",
            description=(
                "non-uniform variant of the GM algorithm (Section 8 extension)"
            ),
            build=_make_gm_builder(uniform=False),
            uses_membership=True,
        )
    )
    register_stack(
        StackSpec(
            name="gm-reform",
            description=(
                "GM algorithm with timeout-gated group reformation: a "
                "stalled view change escalates to a full-static-set "
                "consensus that rebuilds the group after view-majority loss"
            ),
            build=_make_gm_builder(uniform=True, reform=True),
            uses_membership=True,
            # Capability flag tooling keys on: campaign grids apply the
            # reformation-timeout sweep dimension to stacks carrying it.
            params=(("reformation", True),),
        )
    )
    register_fd_kind("qos", _qos_fabric)
    register_fd_kind("heartbeat", _heartbeat_fabric)
    register_fd_kind("perfect", _perfect_fabric)


_register_builtins()
