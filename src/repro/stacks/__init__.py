"""Pluggable protocol-stack API.

A *stack* is a named, frozen composition of protocol layers (atomic
broadcast variant + its substrates) resolved through a registry; a *failure
detector kind* is an interchangeable fabric implementation attached to any
stack.  See :mod:`repro.stacks.api` for the contracts and
:mod:`repro.stacks.registry` for the built-in registrations.
"""

from repro.stacks.api import (
    FailureDetectorFabric,
    FaultInjectable,
    StackLayers,
    StackSpec,
    describe_stack,
)
from repro.stacks.registry import (
    available_fd_kinds,
    available_stacks,
    create_fd_fabric,
    get_fd_kind,
    get_stack,
    register_fd_kind,
    register_stack,
    resolve,
    split_stack,
    stack_variants,
    unregister_fd_kind,
    unregister_stack,
)

__all__ = [
    "FailureDetectorFabric",
    "FaultInjectable",
    "StackLayers",
    "StackSpec",
    "available_fd_kinds",
    "available_stacks",
    "create_fd_fabric",
    "describe_stack",
    "get_fd_kind",
    "get_stack",
    "register_fd_kind",
    "register_stack",
    "resolve",
    "split_stack",
    "stack_variants",
    "unregister_fd_kind",
    "unregister_stack",
]
