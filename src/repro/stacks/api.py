"""Public API of the pluggable protocol-stack layer.

The paper's whole point is comparing *interchangeable* protocol stacks under
identical conditions.  This module defines the contracts that make a stack a
first-class, swappable object instead of an ``if algorithm == ...`` chain:

* :class:`StackSpec` -- a named, frozen descriptor of one layer composition
  (which atomic broadcast variant, whether it needs a group membership
  service, which failure detector kind it uses by default);
* :class:`StackLayers` -- the per-process layer bundle a stack's builder
  returns to the system assembler;
* :class:`FailureDetectorFabric` -- the structural protocol every failure
  detector implementation must satisfy to be registered as an ``fd_kind``
  (the QoS model of the paper, the message-based heartbeat detector, the
  idealised perfect detector, or a user-supplied one);
* :class:`FaultInjectable` -- the capability protocol fault schedules compile
  against: anything that can crash/recover processes and force suspicions
  can execute a :class:`repro.scenarios.faults.FaultSchedule`, without the
  schedule reaching into implementation internals like ``system.fd_fabric``.

Concrete stack and failure detector registrations live in
:mod:`repro.stacks.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Optional,
    Protocol,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.consensus import ConsensusService
    from repro.core.group_membership import GroupMembership
    from repro.core.reliable_broadcast import ReliableBroadcast
    from repro.core.types import AtomicBroadcast
    from repro.failure_detectors.interface import FailureDetector
    from repro.sim.process import SimProcess
    from repro.system import BroadcastSystem, SystemConfig


@dataclass(frozen=True)
class StackLayers:
    """The per-process protocol layers one stack builder assembles.

    ``abcast`` is mandatory (it is the service the workload drives);
    ``membership`` is only present for stacks built on a group membership
    service.  Further optional layers added by future stacks should extend
    this bundle rather than grow positional returns.
    """

    abcast: "AtomicBroadcast"
    membership: Optional["GroupMembership"] = None


#: A stack's per-process layer factory.  Called once per process, *after* the
#: process, its failure detector, the reliable broadcast and the consensus
#: service exist -- in exactly that order, which golden-value tests pin down.
LayerBuilder = Callable[
    ["BroadcastSystem", "SimProcess", "ReliableBroadcast", "ConsensusService"],
    StackLayers,
]


@dataclass(frozen=True)
class StackSpec:
    """A named, frozen descriptor of one protocol-stack composition.

    Attributes
    ----------
    name:
        Registry key (``"fd"``, ``"gm"``, ``"gm-nonuniform"``, ...).
    description:
        One-line human-readable summary (shown by CLIs and docs).
    build:
        The per-process layer factory (see :data:`LayerBuilder`).
    uses_membership:
        Whether the stack runs a group membership service (and therefore
        exposes ``BroadcastSystem.membership``).
    default_fd_kind:
        The failure detector kind the stack uses unless the configuration
        overrides it (``"qos"`` for all paper stacks).
    params:
        Free-form extra metadata for tooling (kept hashable as a tuple of
        ``(key, value)`` pairs).
    """

    name: str
    description: str
    build: LayerBuilder
    uses_membership: bool = False
    default_fd_kind: str = "qos"
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a stack needs a non-empty name")
        if "/" in self.name:
            raise ValueError(
                f"stack names cannot contain '/': {self.name!r} "
                "(slashes select a failure detector variant, e.g. 'fd/heartbeat')"
            )


#: A failure detector fabric factory: called once per system, before any
#: process exists, with the simulation kernel, the network, the system's
#: random streams and the full configuration.
FabricFactory = Callable[..., "FailureDetectorFabric"]


@runtime_checkable
class FailureDetectorFabric(Protocol):
    """Structural protocol of a failure detector implementation.

    A fabric owns one :class:`~repro.failure_detectors.interface.FailureDetector`
    per process and drives their suspicion state -- from the simulation clock
    (QoS model), from real messages (heartbeats) or not at all (perfect).
    The system assembler and the fault-schedule compiler only ever use these
    methods, so any object satisfying them can be registered as an
    ``fd_kind``.
    """

    def attach(self, process: "SimProcess") -> "FailureDetector":
        """Create/return the detector of ``process`` (called once per process)."""
        ...

    def detector(self, pid: int) -> "FailureDetector":
        """The failure detector local to process ``pid``."""
        ...

    def detectors(self) -> Dict[int, "FailureDetector"]:
        """All detectors, keyed by owner process id."""
        ...

    def start(self) -> None:
        """Lifecycle hook invoked once when the system starts."""
        ...

    def suspect_permanently(self, monitored: int, delay: float = 0.0) -> None:
        """Make every monitor suspect ``monitored`` permanently after ``delay``."""
        ...

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``."""
        ...


@runtime_checkable
class FaultInjectable(Protocol):
    """Capability protocol fault schedules compile against.

    :meth:`repro.scenarios.faults.FaultSchedule.apply` only needs these
    members, so schedules run against a :class:`repro.system.BroadcastSystem`
    -- or against any test double providing the same capabilities -- without
    touching failure detector internals.
    """

    #: The system configuration (churn generators read ``n``, ``seed`` and
    #: the ``f < n/2`` bound from it).
    config: "SystemConfig"

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` at the current simulation time."""
        ...

    def crash_at(self, time: float, pid: int) -> None:
        """Schedule the crash of ``pid`` at ``time``."""
        ...

    def recover(self, pid: int) -> None:
        """Recover process ``pid`` at the current simulation time."""
        ...

    def recover_at(self, time: float, pid: int) -> None:
        """Schedule the recovery of ``pid`` at ``time``."""
        ...

    def suspect_permanently(self, pid: int, delay: float = 0.0) -> None:
        """Make every failure detector suspect ``pid`` permanently."""
        ...

    def suspect_permanently_at(self, time: float, pid: int) -> None:
        """Schedule :meth:`suspect_permanently` of ``pid`` at ``time``."""
        ...

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``."""
        ...

    # -------------------------------------------------------------- partitions

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network into isolated groups at the current time."""
        ...

    def partition_at(self, time: float, groups: Iterable[Iterable[int]]) -> None:
        """Schedule a symmetric partition into ``groups`` at ``time``."""
        ...

    def block_links(self, links: Iterable[tuple]) -> None:
        """Block exactly the directed ``(src, dst)`` links (asymmetric cut)."""
        ...

    def block_links_at(self, time: float, links: Iterable[tuple]) -> None:
        """Schedule an asymmetric link cut at ``time``."""
        ...

    def heal(self) -> None:
        """Restore full reachability at the current simulation time."""
        ...

    def heal_at(self, time: float) -> None:
        """Schedule the heal of every partition/link cut at ``time``."""
        ...

    # ------------------------------------------------------------ gray failures

    def degrade_cpu(self, pid: int, factor: float) -> None:
        """Slow down the CPU of ``pid`` by ``factor`` (gray failure)."""
        ...

    def degrade_cpu_at(self, time: float, pid: int, factor: float) -> None:
        """Schedule the CPU degradation of ``pid`` at ``time``."""
        ...

    def restore_cpu(self, pid: int) -> None:
        """Return the CPU of ``pid`` to full speed."""
        ...

    def restore_cpu_at(self, time: float, pid: int) -> None:
        """Schedule the CPU restoration of ``pid`` at ``time``."""
        ...

    def degrade_link(
        self,
        src: int,
        dst: int,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        """Make the directed link lossy and/or duplicating (both zero restores)."""
        ...

    def degrade_link_at(
        self,
        time: float,
        src: int,
        dst: int,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        """Schedule the link degradation at ``time``."""
        ...


def describe_stack(spec: StackSpec) -> Dict[str, Any]:
    """A JSON-friendly view of a stack descriptor (for CLIs and tooling)."""
    return {
        "name": spec.name,
        "description": spec.description,
        "uses_membership": spec.uses_membership,
        "default_fd_kind": spec.default_fd_kind,
    }
