"""A replicated service driven by atomic broadcast (active replication).

Every process of a :class:`~repro.system.BroadcastSystem` hosts one replica
of a deterministic state machine.  Client requests are A-broadcast; each
replica applies them in delivery order and produces a reply.  The response
time seen by the client is modelled, as in Section 5.1 of the paper, as the
time of the *first* reply -- which, assuming identical processing and reply
times across replicas, is the first A-delivery plus a constant.  The
constant is irrelevant for comparisons, so the recorded response time is the
first-delivery latency plus the configured processing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.types import BroadcastID
from repro.replication.state_machine import Command, KeyValueStore, StateMachine
from repro.system import BroadcastSystem


@dataclass
class ClientRequest:
    """Book-keeping for one submitted request."""

    command: Command
    broadcast_id: BroadcastID
    submitted_at: float
    first_reply_at: Optional[float] = None
    reply: Any = None

    @property
    def response_time(self) -> Optional[float]:
        """Client-perceived response time (``None`` until a reply exists)."""
        if self.first_reply_at is None:
            return None
        return self.first_reply_at - self.submitted_at


#: Called when a submitted request gets its first reply.
ReplyListener = Callable[[ClientRequest], None]


class ReplicatedService:
    """Active replication of a state machine over atomic broadcast."""

    def __init__(
        self,
        system: BroadcastSystem,
        state_machine_factory: Callable[[], StateMachine] = KeyValueStore,
        processing_time: float = 0.0,
    ) -> None:
        self.system = system
        self.processing_time = processing_time
        self.replicas: Dict[int, StateMachine] = {
            pid: state_machine_factory() for pid in range(system.config.n)
        }
        #: Commands applied by each replica, in application order.
        self.applied_log: Dict[int, List[Command]] = {
            pid: [] for pid in range(system.config.n)
        }
        self.requests: Dict[BroadcastID, ClientRequest] = {}
        self._reply_listeners: List[ReplyListener] = []
        self._wire()

    # ------------------------------------------------------------------ wiring

    def _wire(self) -> None:
        for pid in range(self.system.config.n):
            self.system.abcast(pid).add_delivery_listener(
                lambda bid, payload, _pid=pid: self._on_delivery(_pid, bid, payload)
            )

    def add_reply_listener(self, listener: ReplyListener) -> None:
        """Subscribe to first replies: ``listener(request)`` once per request.

        The listener fires at the first A-delivery of the request anywhere
        in the group (the client-perceived completion instant); the load
        layer's closed-loop clients and admission window drain on it.
        """
        self._reply_listeners.append(listener)

    # ------------------------------------------------------------------ client API

    def submit(self, sender: int, command: Command) -> ClientRequest:
        """Submit ``command`` through replica ``sender`` (at the current time)."""
        broadcast_id = self.system.broadcast(sender, command)
        request = ClientRequest(
            command=command,
            broadcast_id=broadcast_id,
            submitted_at=self.system.sim.now,
        )
        self.requests[broadcast_id] = request
        return request

    def submit_at(self, time: float, sender: int, command: Command) -> None:
        """Schedule a command submission at an absolute simulation time."""
        self.system.sim.schedule_at(time, self.submit, sender, command)

    def read_local(self, pid: int, command: Command) -> Any:
        """Serve a read from replica ``pid``'s local state, bypassing broadcast.

        The weak-consistency read path (``consistency="local"`` in the load
        subsystem): the reply reflects replica ``pid``'s applied prefix, so
        it may be stale relative to the totally-ordered log -- the classic
        latency-vs-consistency trade.  Only non-mutating operations are
        allowed; the read is not appended to the replicated log.
        """
        if command.operation != "get":
            raise ValueError(
                f"only 'get' commands may be served locally, got {command.operation!r}"
            )
        return self.replicas[pid].apply(command)

    # ------------------------------------------------------------------ replica side

    def _on_delivery(self, pid: int, broadcast_id: BroadcastID, payload: Any) -> None:
        if not isinstance(payload, Command):
            return
        replica = self.replicas[pid]
        reply = replica.apply(payload)
        self.applied_log[pid].append(payload)
        request = self.requests.get(broadcast_id)
        if request is not None and request.first_reply_at is None:
            request.first_reply_at = self.system.sim.now + self.processing_time
            request.reply = reply
            obs = self.system.obs
            if obs is not None:
                obs.service_reply(
                    self.system.sim.now, payload.client, request.response_time
                )
            for listener in list(self._reply_listeners):
                listener(request)

    # ------------------------------------------------------------------ inspection

    def response_times(self) -> List[float]:
        """Response times of all requests that got a reply."""
        return [
            request.response_time
            for request in self.requests.values()
            if request.response_time is not None
        ]

    def replica_states(self) -> Dict[int, Any]:
        """Snapshot of every replica's state (for consistency checks)."""
        return {pid: replica.snapshot() for pid, replica in self.replicas.items()}

    def replicas_consistent(self) -> bool:
        """Whether all *correct* replicas applied the same command prefix."""
        correct = self.system.correct_processes()
        logs = [
            [cmd for cmd in self.applied_log[pid]] for pid in correct
        ]
        if not logs:
            return True
        shortest = min(len(log) for log in logs)
        reference = logs[0][:shortest]
        return all(log[:shortest] == reference for log in logs)
