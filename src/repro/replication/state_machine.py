"""Deterministic state machines replicated over atomic broadcast."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Command:
    """One request submitted to the replicated service.

    Attributes
    ----------
    operation:
        Operation name, interpreted by the concrete state machine
        (for the key-value store: ``"put"``, ``"get"``, ``"delete"``,
        ``"increment"``).
    key / value:
        Operands of the operation.
    client:
        Identifier of the submitting client (used to route the reply).
    request_id:
        Client-local request number, so replies can be matched to requests.
    """

    operation: str
    key: str = ""
    value: Any = None
    client: int = 0
    request_id: int = 0


class StateMachine:
    """Base class: apply commands deterministically, produce replies."""

    def apply(self, command: Command) -> Any:
        """Apply ``command`` and return the reply value."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """A deterministic, comparable snapshot of the full state."""
        raise NotImplementedError


class KeyValueStore(StateMachine):
    """A small deterministic key-value store with counters."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.applied: int = 0

    def apply(self, command: Command) -> Any:
        """Apply one command; unknown operations raise ``ValueError``."""
        self.applied += 1
        if command.operation == "put":
            self._data[command.key] = command.value
            return ("ok", command.key)
        if command.operation == "get":
            return ("value", self._data.get(command.key))
        if command.operation == "delete":
            existed = command.key in self._data
            self._data.pop(command.key, None)
            return ("deleted", existed)
        if command.operation == "increment":
            amount = command.value if command.value is not None else 1
            current = self._data.get(command.key, 0)
            self._data[command.key] = current + amount
            return ("value", self._data[command.key])
        raise ValueError(f"unknown operation {command.operation!r}")

    def get(self, key: str, default: Any = None) -> Any:
        """Read a key directly (test/inspection helper, not replicated)."""
        return self._data.get(key, default)

    def snapshot(self) -> Tuple[Tuple[str, Any], ...]:
        """Sorted tuple of the store contents (comparable across replicas)."""
        return tuple(sorted(self._data.items()))
