"""Active replication (state-machine replication) on top of atomic broadcast.

Section 5.1 of the paper motivates the latency metric with a service
replicated by active replication: clients atomically broadcast their
requests to the server replicas, every replica executes them in delivery
order, and the client keeps the first reply.  This package provides that
substrate -- a deterministic state machine, a replicated key-value store and
a client/response-time model -- both as a documented example of using the
library and as an integration-test workload.
"""

from repro.replication.state_machine import Command, KeyValueStore, StateMachine
from repro.replication.service import ClientRequest, ReplicatedService

__all__ = [
    "ClientRequest",
    "Command",
    "KeyValueStore",
    "ReplicatedService",
    "StateMachine",
]
