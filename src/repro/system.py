"""System builder: wires a complete simulated atomic broadcast system.

:class:`BroadcastSystem` assembles the simulation kernel, the contention
network, the processes, the failure detectors and one of the two atomic
broadcast protocol stacks:

* ``"fd"``            -- reliable broadcast + consensus + Chandra-Toueg atomic
  broadcast (the *FD algorithm*),
* ``"gm"``            -- reliable broadcast + consensus + group membership +
  fixed-sequencer uniform atomic broadcast (the *GM algorithm*),
* ``"gm-nonuniform"`` -- the non-uniform variant of the GM algorithm
  (extension discussed in Section 8 of the paper).

This is the main entry point of the library: workload generators, scenarios,
benchmarks and the example applications all operate on a
:class:`BroadcastSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.core.consensus import ConsensusService
from repro.core.fd_broadcast import FDAtomicBroadcast
from repro.core.group_membership import GroupMembership
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.sequencer_broadcast import SequencerAtomicBroadcast
from repro.core.types import AtomicBroadcast, BroadcastID
from repro.failure_detectors.qos import QoSConfig, QoSFailureDetectorFabric
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams

#: Supported algorithm identifiers.
ALGORITHMS = ("fd", "gm", "gm-nonuniform")


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of a simulated atomic broadcast system.

    Attributes
    ----------
    n:
        Number of processes.
    algorithm:
        ``"fd"``, ``"gm"`` or ``"gm-nonuniform"``.
    lambda_cpu:
        The ``lambda`` parameter of the network model (CPU cost of sending or
        receiving one message, in network-time units).  The paper's published
        results use 1.
    network_time:
        Network transmission time of one message; the simulation time unit
        (interpreted as 1 ms).
    seed:
        Root seed of all random streams of the run.
    fd:
        Quality-of-service parameters of the failure detectors.
    renumber_coordinators:
        Enable the coordinator re-numbering optimisation of the FD algorithm.
    join_retry_interval:
        Retry period of the join protocol of wrongly excluded processes
        (GM algorithm only).
    pipeline_depth:
        How many ordering rounds (consensus instances / sequencer batches)
        may be in flight at once.  The same value is applied to both
        algorithms so that their message patterns stay identical in
        suspicion-free runs; 1 gives the strictly sequential textbook
        behaviour.
    """

    n: int = 3
    algorithm: str = "fd"
    lambda_cpu: float = 1.0
    network_time: float = 1.0
    seed: int = 1
    fd: QoSConfig = field(default_factory=QoSConfig)
    renumber_coordinators: bool = True
    join_retry_interval: float = 500.0
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    def with_seed(self, seed: int) -> "SystemConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def max_tolerated_crashes(self) -> int:
        """The ``f < n/2`` bound both algorithms share."""
        return (self.n - 1) // 2


class BroadcastSystem:
    """A fully wired simulated system running one atomic broadcast algorithm."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RandomStreams(config.seed)
        self.network = Network(
            self.sim,
            NetworkConfig(
                n=config.n,
                lambda_cpu=config.lambda_cpu,
                network_time=config.network_time,
            ),
        )
        self.fd_fabric = QoSFailureDetectorFabric(self.sim, self.network, self.rng, config.fd)
        self.processes: List[SimProcess] = []
        self.abcasts: List[AtomicBroadcast] = []
        self.rbcasts: List[ReliableBroadcast] = []
        self.consensus_services: List[ConsensusService] = []
        self.memberships: List[GroupMembership] = []
        self._started = False
        self._build()

    # ------------------------------------------------------------------ construction

    def _build(self) -> None:
        for pid in range(self.config.n):
            process = SimProcess(self.sim, self.network, pid)
            process.failure_detector = self.fd_fabric.detector(pid)
            rbcast = ReliableBroadcast(process)
            consensus = ConsensusService(process, rbcast)
            if self.config.algorithm == "fd":
                abcast: AtomicBroadcast = FDAtomicBroadcast(
                    process,
                    rbcast,
                    consensus,
                    renumber_coordinators=self.config.renumber_coordinators,
                    pipeline_depth=self.config.pipeline_depth,
                )
            else:
                membership = GroupMembership(
                    process,
                    consensus,
                    join_retry_interval=self.config.join_retry_interval,
                )
                abcast = SequencerAtomicBroadcast(
                    process,
                    membership,
                    uniform=(self.config.algorithm == "gm"),
                    pipeline_depth=self.config.pipeline_depth,
                )
                self.memberships.append(membership)
            self.processes.append(process)
            self.rbcasts.append(rbcast)
            self.consensus_services.append(consensus)
            self.abcasts.append(abcast)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start all components and the failure detector fabric (idempotent)."""
        if self._started:
            return
        self._started = True
        for process in self.processes:
            process.start()
        self.fd_fabric.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Start (if needed) and run the simulation; returns the end time."""
        self.start()
        return self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------ operations

    def process(self, pid: int) -> SimProcess:
        """The simulated process with id ``pid``."""
        return self.processes[pid]

    def abcast(self, pid: int) -> AtomicBroadcast:
        """The atomic broadcast component of process ``pid``."""
        return self.abcasts[pid]

    def membership(self, pid: int) -> GroupMembership:
        """The group membership component of ``pid`` (GM algorithm only)."""
        if self.config.algorithm == "fd":
            raise ValueError("the FD algorithm has no group membership service")
        return self.memberships[pid]

    def broadcast(self, sender: int, payload: Any) -> BroadcastID:
        """A-broadcast ``payload`` from process ``sender`` (at the current time)."""
        return self.abcasts[sender].broadcast(payload)

    def broadcast_at(self, time: float, sender: int, payload: Any) -> None:
        """Schedule an A-broadcast of ``payload`` by ``sender`` at ``time``."""
        self.sim.schedule_at(time, self.abcasts[sender].broadcast, payload)

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` at the current simulation time."""
        self.processes[pid].crash()

    def crash_at(self, time: float, pid: int) -> None:
        """Schedule the crash of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.processes[pid].crash)

    def recover(self, pid: int) -> None:
        """Recover process ``pid`` at the current simulation time.

        The process comes back with its pre-crash protocol state and
        reconciles with the group: under the FD algorithm it requests the
        consensus decisions it missed from its peers; under the GM algorithms
        it restarts the join protocol and is re-admitted through a view
        change with a state transfer.
        """
        self.processes[pid].recover()

    def recover_at(self, time: float, pid: int) -> None:
        """Schedule the recovery of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.processes[pid].recover)

    def correct_processes(self) -> List[int]:
        """Ids of processes that have not crashed."""
        return self.network.correct_processes()

    # ------------------------------------------------------------------ inspection

    def delivery_sequences(self) -> Dict[int, List[BroadcastID]]:
        """Delivery order observed by every process (for invariant checks)."""
        return {pid: self.abcasts[pid].delivered_ids() for pid in range(self.config.n)}

    def add_delivery_listener(self, listener: Callable[[int, BroadcastID, Any], None]) -> None:
        """Subscribe to deliveries on every process: ``listener(pid, id, payload)``."""
        for pid, abcast in enumerate(self.abcasts):
            abcast.add_delivery_listener(
                lambda bid, payload, _pid=pid: listener(_pid, bid, payload)
            )

    def message_stats(self) -> Dict[str, int]:
        """Traffic counters of the underlying network."""
        return self.network.stats.as_dict()


def build_system(config: Optional[SystemConfig] = None, **overrides: Any) -> BroadcastSystem:
    """Convenience constructor: ``build_system(n=5, algorithm="gm", seed=7)``."""
    if config is None:
        config = SystemConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    return BroadcastSystem(config)
