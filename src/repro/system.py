"""System builder: wires a complete simulated atomic broadcast system.

:class:`BroadcastSystem` assembles the simulation kernel, the contention
network, the processes, the failure detectors and one protocol stack
resolved through the **stack registry** (:mod:`repro.stacks`):

* ``"fd"``            -- reliable broadcast + consensus + Chandra-Toueg atomic
  broadcast (the *FD algorithm*),
* ``"gm"``            -- reliable broadcast + consensus + group membership +
  fixed-sequencer uniform atomic broadcast (the *GM algorithm*),
* ``"gm-nonuniform"`` -- the non-uniform variant of the GM algorithm
  (extension discussed in Section 8 of the paper),
* ``"gm-reform"``     -- the GM algorithm with the timeout-gated group
  reformation layer (recovers from view-majority loss),

each combinable with any registered failure detector kind (``"qos"``,
``"heartbeat"``, ``"perfect"``) -- either via ``fd_kind=`` or a slash-
qualified stack name such as ``"fd/heartbeat"``.  User-registered stacks
and fd kinds (:func:`repro.stacks.register_stack`,
:func:`repro.stacks.register_fd_kind`) assemble through exactly the same
path; there is no privileged built-in wiring.

This is the main entry point of the library: workload generators, scenarios,
benchmarks and the example applications all operate on a
:class:`BroadcastSystem`, which satisfies the
:class:`repro.stacks.FaultInjectable` capability protocol fault schedules
compile against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.core.consensus import ConsensusService
from repro.core.group_membership import GroupMembership
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.types import AtomicBroadcast, BroadcastID
from repro.failure_detectors.heartbeat import HeartbeatConfig
from repro.failure_detectors.qos import QoSConfig
from repro.obs.instrumentation import Instrumentation
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams
from repro.sim.wan import wan_profile as wan_registry_lookup
from repro.stacks import registry as stack_registry
from repro.stacks.api import FailureDetectorFabric, StackSpec

#: Deprecated alias of :func:`repro.stacks.available_stacks`, kept because the
#: seed API exposed it; the registry is the source of truth now.
ALGORITHMS = ("fd", "gm", "gm-nonuniform")

_DEPRECATED_ALGORITHM = (
    "SystemConfig(algorithm=...) is deprecated; use stack= (and fd_kind= for "
    "the failure detector variant) instead"
)


@dataclass(frozen=True, init=False)
class SystemConfig:
    """Configuration of a simulated atomic broadcast system.

    Attributes
    ----------
    n:
        Number of processes.
    stack:
        Name of the protocol stack in the registry (``"fd"``, ``"gm"``,
        ``"gm-nonuniform"``, or any user-registered stack).  A slash-
        qualified name (``"fd/heartbeat"``) selects a failure detector kind
        at the same time and is normalised: ``stack`` stores the base name,
        ``fd_kind`` the variant.
    fd_kind:
        Failure detector kind (``"qos"``, ``"heartbeat"``, ``"perfect"``,
        or any user-registered kind).  Defaults to the stack's
        ``default_fd_kind`` (``"qos"`` for all built-in stacks).
    lambda_cpu:
        The ``lambda`` parameter of the network model (CPU cost of sending or
        receiving one message, in network-time units).  The paper's published
        results use 1.
    network_time:
        Network transmission time of one message; the simulation time unit
        (interpreted as 1 ms).
    seed:
        Root seed of all random streams of the run.
    fd:
        Quality-of-service parameters of the clock-driven failure detectors
        (``fd_kind="qos"`` reads all of it, ``"perfect"`` only the
        detection time, ``"heartbeat"`` ignores it).
    heartbeat:
        Parameters of the message-based heartbeat detector
        (``fd_kind="heartbeat"`` only).
    renumber_coordinators:
        Enable the coordinator re-numbering optimisation of the FD algorithm.
    join_retry_interval:
        Retry period of the join protocol of wrongly excluded processes
        (GM stacks only).
    reformation_timeout:
        How long a view change may stall (ms) before a member proposes a
        group *reformation* -- a consensus over the full static process set
        deciding the successor view, restoring liveness after an installed
        view loses its majority of alive members.  Only stacks built with
        reformation support read it (``"gm-reform"``); the paper's stacks
        ignore it and keep the paper's blocking behaviour.
    pipeline_depth:
        How many ordering rounds (consensus instances / sequencer batches)
        may be in flight at once.  The same value is applied to every stack
        so that their message patterns stay identical in suspicion-free
        runs; 1 gives the strictly sequential textbook behaviour.
    instrument:
        Build the system with the instrumentation layer enabled
        (:mod:`repro.obs`): per-layer counters, the A-broadcast lifecycle,
        suspicion/consensus/view-change hooks and simulator event-loop
        stats, exportable as ``metrics.json`` / event traces.  Off by
        default: the uninstrumented hot path pays nothing.  Observation
        never perturbs the run -- delivered sequences, latencies and event
        counts are bit-identical either way (golden-neutrality tests pin
        this).
    max_batch:
        ``0`` (the default) exposes each stack's atomic broadcast directly --
        the pre-batching system, bit-identical to every golden baseline.  A
        positive value wraps every process's abcast in a
        :class:`repro.load.batching.BatchingAtomicBroadcast` that coalesces
        up to ``max_batch`` client payloads into one inner A-broadcast,
        amortizing the per-message dissemination and sequencing cost over
        the batch.  Works uniformly for every registered stack (the wrapper
        sits above the registry's layers).
    max_delay:
        Maximum time (ms) a pending payload may wait for its batch to fill
        before the batcher flushes anyway (``max_batch > 0`` only).  ``0``
        still coalesces payloads arriving at the same simulation instant.
    fd_scan_interval:
        ``None`` (the default) keeps the exact clock-driven failure detector
        semantics: every pair transition is its own simulator event, and all
        golden baselines are pinned against this mode.  A positive value
        switches the qos/perfect fabrics to the **batched scan**: pair
        transitions are kept on a fabric-local calendar and drained by one
        simulator event per scan tick, firing each transition at the next
        multiple of the interval.  This turns the O(n^2) per-pair timer
        events into O(1) armed events -- the throughput lane for large-n
        sweeps -- at the cost of quantizing detector transitions to the
        tick (the same approximation the heartbeat detector's
        ``check_interval`` already makes; heartbeat ignores this knob).

    The keyword ``algorithm=`` is accepted as a **deprecated alias** of
    ``stack=`` (it emits a :class:`DeprecationWarning` once, at
    construction) so seed-era call sites keep working; reading
    ``config.algorithm`` returns the stack name.
    """

    n: int = 3
    stack: str = "fd"
    fd_kind: str = "qos"
    lambda_cpu: float = 1.0
    network_time: float = 1.0
    seed: int = 1
    fd: QoSConfig = field(default_factory=QoSConfig)
    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    renumber_coordinators: bool = True
    join_retry_interval: float = 500.0
    reformation_timeout: float = 500.0
    pipeline_depth: int = 2
    instrument: bool = False
    fd_scan_interval: Optional[float] = None
    max_batch: int = 0
    max_delay: float = 0.0
    wan_profile: Optional[str] = None

    def __init__(
        self,
        n: int = 3,
        stack: Optional[str] = None,
        fd_kind: Optional[str] = None,
        lambda_cpu: float = 1.0,
        network_time: float = 1.0,
        seed: int = 1,
        fd: Optional[QoSConfig] = None,
        heartbeat: Optional[HeartbeatConfig] = None,
        renumber_coordinators: bool = True,
        join_retry_interval: float = 500.0,
        reformation_timeout: float = 500.0,
        pipeline_depth: int = 2,
        instrument: bool = False,
        fd_scan_interval: Optional[float] = None,
        max_batch: int = 0,
        max_delay: float = 0.0,
        wan_profile: Optional[str] = None,
        algorithm: Optional[str] = None,
    ) -> None:
        if algorithm is not None:
            warnings.warn(_DEPRECATED_ALGORITHM, DeprecationWarning, stacklevel=2)
            if stack is not None and stack != algorithm:
                raise ValueError(
                    f"conflicting stack selection: stack={stack!r} vs "
                    f"deprecated algorithm={algorithm!r}"
                )
            stack = algorithm
        if stack is None:
            stack = "fd"
        # Validates both names and folds "fd/heartbeat"-style variants.
        spec, resolved_kind = stack_registry.resolve(stack, fd_kind)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if reformation_timeout <= 0:
            raise ValueError(
                f"reformation_timeout must be > 0 ms, got {reformation_timeout}"
            )
        set_field = object.__setattr__
        set_field(self, "n", n)
        set_field(self, "stack", spec.name)
        set_field(self, "fd_kind", resolved_kind)
        set_field(self, "lambda_cpu", lambda_cpu)
        set_field(self, "network_time", network_time)
        set_field(self, "seed", seed)
        set_field(self, "fd", fd if fd is not None else QoSConfig())
        set_field(self, "heartbeat", heartbeat if heartbeat is not None else HeartbeatConfig())
        set_field(self, "renumber_coordinators", renumber_coordinators)
        set_field(self, "join_retry_interval", join_retry_interval)
        set_field(self, "reformation_timeout", reformation_timeout)
        if fd_scan_interval is not None and fd_scan_interval <= 0:
            raise ValueError(
                f"fd_scan_interval must be > 0 (or None), got {fd_scan_interval}"
            )
        if max_batch < 0:
            raise ValueError(f"max_batch must be >= 0 (0 = batching off), got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0 ms, got {max_delay}")
        if wan_profile is not None:
            # Validates the name eagerly (typos fail at configuration time,
            # not mid-campaign); the profile stays referenced by name so the
            # config remains hashable and cache-key friendly.
            wan_registry_lookup(wan_profile)
        set_field(self, "pipeline_depth", pipeline_depth)
        set_field(self, "instrument", bool(instrument))
        set_field(self, "fd_scan_interval", fd_scan_interval)
        set_field(self, "max_batch", int(max_batch))
        set_field(self, "max_delay", float(max_delay))
        set_field(self, "wan_profile", wan_profile)

    @property
    def algorithm(self) -> str:
        """Deprecated read alias of :attr:`stack` (the seed-era field name)."""
        return self.stack

    @property
    def stack_label(self) -> str:
        """The stack name, qualified with the fd kind when non-default."""
        if self.fd_kind == stack_registry.get_stack(self.stack).default_fd_kind:
            return self.stack
        return f"{self.stack}/{self.fd_kind}"

    def stack_spec(self) -> StackSpec:
        """The registry descriptor this configuration resolves to."""
        return stack_registry.get_stack(self.stack)

    def with_seed(self, seed: int) -> "SystemConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def max_tolerated_crashes(self) -> int:
        """The ``f < n/2`` bound all built-in stacks share."""
        return (self.n - 1) // 2


class BroadcastSystem:
    """A fully wired simulated system running one registered protocol stack."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stack_spec = config.stack_spec()
        self.sim = Simulator()
        self.rng = RandomStreams(config.seed)
        self.network = Network(
            self.sim,
            NetworkConfig(
                n=config.n,
                lambda_cpu=config.lambda_cpu,
                network_time=config.network_time,
            ),
        )
        if config.wan_profile is not None:
            self.network.set_wan_delays(
                wan_registry_lookup(config.wan_profile).delays(config.n)
            )
        # Gray links draw from their own named stream: installing it up
        # front costs nothing (streams are independent and it is only read
        # when a lossy/duplicating link exists).
        self.network.set_link_rng(self.rng.stream("net/gray"))
        self.fd_fabric: FailureDetectorFabric = stack_registry.create_fd_fabric(
            config.fd_kind, self.sim, self.network, self.rng, config
        )
        self.processes: List[SimProcess] = []
        self.abcasts: List[AtomicBroadcast] = []
        self.rbcasts: List[ReliableBroadcast] = []
        self.consensus_services: List[ConsensusService] = []
        self.memberships: List[GroupMembership] = []
        self._started = False
        #: The instrumentation of this system, or ``None`` when tracing is
        #: off (layers then hold the :data:`repro.obs.NULL` no-op singleton).
        self.obs: Optional[Instrumentation] = None
        self._build()
        if config.instrument:
            self.enable_instrumentation()

    # ------------------------------------------------------------------ construction

    def _build(self) -> None:
        """Assemble every process through the stack's registered layer factory.

        The per-process order -- process, failure detector, reliable
        broadcast, consensus, then the stack's layers -- is part of the
        stack contract: golden-value tests pin it down because it fixes the
        random-stream and listener-registration order of a run.

        With ``max_batch > 0`` each process's abcast is additionally wrapped
        in a request batcher (every registered stack gets it, with zero
        per-stack code); with the default ``max_batch=0`` no wrapper exists
        at all, keeping the off path architecturally identical to the
        golden-pinned system.  The import is deferred: :mod:`repro.load`
        builds on the replication service, which imports this module.
        """
        wrap = None
        if self.config.max_batch > 0:
            from repro.load.batching import BatchingAtomicBroadcast

            wrap = BatchingAtomicBroadcast
        for pid in range(self.config.n):
            process = SimProcess(self.sim, self.network, pid)
            process.failure_detector = self.fd_fabric.attach(process)
            rbcast = ReliableBroadcast(process)
            consensus = ConsensusService(process, rbcast)
            layers = self.stack_spec.build(self, process, rbcast, consensus)
            if layers.membership is not None:
                self.memberships.append(layers.membership)
            self.processes.append(process)
            self.rbcasts.append(rbcast)
            self.consensus_services.append(consensus)
            abcast = layers.abcast
            if wrap is not None:
                abcast = wrap(
                    process, abcast, self.config.max_batch, self.config.max_delay
                )
            self.abcasts.append(abcast)

    # ------------------------------------------------------------------ instrumentation

    def enable_instrumentation(
        self, obs: Optional[Instrumentation] = None
    ) -> Instrumentation:
        """Switch the instrumentation layer on for this system (idempotent).

        Creates (or adopts) an :class:`~repro.obs.Instrumentation`, attaches
        it to the simulation kernel and the network, rewires every process
        and protocol component's hook sink, and taps each failure detector's
        suspicion listeners.  Safe to call any time before :meth:`run` --
        the trace recorders call it on attach -- and a second call returns
        the existing object.  Purely observational: enabling it changes no
        delivered sequence, latency or event count.
        """
        if self.obs is not None:
            return self.obs
        if obs is None:
            obs = Instrumentation()
        self.obs = obs
        self.sim.set_instrumentation(obs)
        self.network.set_instrumentation(obs)
        for process in self.processes:
            process.obs = obs
            for component in process.components():
                component._obs = obs
        for monitor, detector in self.fd_fabric.detectors().items():
            detector.add_listener(self._suspicion_hook(monitor, obs))
        return obs

    def _suspicion_hook(self, monitor: int, obs: Instrumentation):
        """A detector listener forwarding to the suspicion hook with time/owner."""

        def _listener(target: int, suspected: bool) -> None:
            obs.suspicion(self.sim.now, monitor, target, suspected)

        return _listener

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start all components and the failure detector fabric (idempotent)."""
        if self._started:
            return
        self._started = True
        for process in self.processes:
            process.start()
        self.fd_fabric.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Start (if needed) and run the simulation; returns the end time."""
        self.start()
        return self.sim.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------ operations

    def process(self, pid: int) -> SimProcess:
        """The simulated process with id ``pid``."""
        return self.processes[pid]

    def abcast(self, pid: int) -> AtomicBroadcast:
        """The atomic broadcast component of process ``pid``."""
        return self.abcasts[pid]

    def membership(self, pid: int) -> GroupMembership:
        """The group membership component of ``pid`` (GM stacks only)."""
        if not self.stack_spec.uses_membership:
            raise ValueError(
                f"the {self.config.stack!r} stack has no group membership service"
            )
        return self.memberships[pid]

    def broadcast(self, sender: int, payload: Any) -> BroadcastID:
        """A-broadcast ``payload`` from process ``sender`` (at the current time)."""
        return self.abcasts[sender].broadcast(payload)

    def broadcast_at(self, time: float, sender: int, payload: Any) -> None:
        """Schedule an A-broadcast of ``payload`` by ``sender`` at ``time``."""
        self.sim.schedule_at(time, self.abcasts[sender].broadcast, payload)

    # ------------------------------------------------------------------ fault injection
    #
    # Together these satisfy the :class:`repro.stacks.FaultInjectable`
    # capability protocol: fault schedules compile against them instead of
    # reaching into the failure detector fabric.

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` at the current simulation time."""
        self.processes[pid].crash()

    def crash_at(self, time: float, pid: int) -> None:
        """Schedule the crash of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.processes[pid].crash)

    def recover(self, pid: int) -> None:
        """Recover process ``pid`` at the current simulation time.

        The process comes back with its pre-crash protocol state and
        reconciles with the group: under the FD stack it requests the
        consensus decisions it missed from its peers; under the GM stacks
        it restarts the join protocol and is re-admitted through a view
        change with a state transfer.
        """
        self.processes[pid].recover()

    def recover_at(self, time: float, pid: int) -> None:
        """Schedule the recovery of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.processes[pid].recover)

    def suspect_permanently(self, pid: int, delay: float = 0.0) -> None:
        """Make every failure detector suspect ``pid`` permanently."""
        self.fd_fabric.suspect_permanently(pid, delay)

    def suspect_permanently_at(self, time: float, pid: int) -> None:
        """Schedule :meth:`suspect_permanently` of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.fd_fabric.suspect_permanently, pid)

    def suspect_during(
        self,
        target: int,
        start: float,
        duration: float,
        monitors: Optional[Iterable[int]] = None,
    ) -> None:
        """Force a wrong suspicion of ``target`` during ``[start, start + duration]``."""
        self.fd_fabric.suspect_during(target, start, duration, monitors=monitors)

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network symmetrically into ``groups`` (now)."""
        self.network.partition([tuple(group) for group in groups])

    def partition_at(self, time: float, groups: Iterable[Iterable[int]]) -> None:
        """Schedule a symmetric partition at ``time``."""
        self.sim.schedule_at(
            time, self.network.partition, [tuple(group) for group in groups]
        )

    def block_links(self, links: Iterable[Any]) -> None:
        """Block individual directed links (asymmetric partition, now)."""
        self.network.block_links([tuple(link) for link in links])

    def block_links_at(self, time: float, links: Iterable[Any]) -> None:
        """Schedule an asymmetric partition at ``time``."""
        self.sim.schedule_at(
            time, self.network.block_links, [tuple(link) for link in links]
        )

    def heal(self) -> None:
        """Heal every partition and blocked link (now)."""
        self.network.heal()

    def heal_at(self, time: float) -> None:
        """Schedule the healing of every partition at ``time``."""
        self.sim.schedule_at(time, self.network.heal)

    def degrade_cpu(self, pid: int, factor: float) -> None:
        """Gray failure: slow ``pid``'s CPU by ``factor`` (now)."""
        self.network.degrade_cpu(pid, factor)

    def degrade_cpu_at(self, time: float, pid: int, factor: float) -> None:
        """Schedule a gray CPU degradation of ``pid`` at ``time``."""
        self.sim.schedule_at(time, self.network.degrade_cpu, pid, factor)

    def restore_cpu(self, pid: int) -> None:
        """End ``pid``'s gray CPU degradation (now)."""
        self.network.restore_cpu(pid)

    def restore_cpu_at(self, time: float, pid: int) -> None:
        """Schedule the end of ``pid``'s gray degradation at ``time``."""
        self.sim.schedule_at(time, self.network.restore_cpu, pid)

    def degrade_link(
        self,
        src: int,
        dst: int,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        """Make the directed link ``src -> dst`` lossy/duplicating (now)."""
        self.network.degrade_link(src, dst, loss_probability, duplicate_probability)

    def degrade_link_at(
        self,
        time: float,
        src: int,
        dst: int,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        """Schedule a gray link fault on ``src -> dst`` at ``time``."""
        self.sim.schedule_at(
            time,
            self.network.degrade_link,
            src,
            dst,
            loss_probability,
            duplicate_probability,
        )

    def correct_processes(self) -> List[int]:
        """Ids of processes that have not crashed."""
        return self.network.correct_processes()

    # ------------------------------------------------------------------ inspection

    def delivery_sequences(self) -> Dict[int, List[BroadcastID]]:
        """Delivery order observed by every process (for invariant checks)."""
        return {pid: self.abcasts[pid].delivered_ids() for pid in range(self.config.n)}

    def add_delivery_listener(self, listener: Callable[[int, BroadcastID, Any], None]) -> None:
        """Subscribe to deliveries on every process: ``listener(pid, id, payload)``."""
        for pid, abcast in enumerate(self.abcasts):
            abcast.add_delivery_listener(
                lambda bid, payload, _pid=pid: listener(_pid, bid, payload)
            )

    def message_stats(self) -> Dict[str, int]:
        """Traffic counters of the underlying network."""
        return self.network.stats.as_dict()

    def metrics_snapshot(self, **extra: Any) -> Dict[str, Any]:
        """The run's ``metrics.json`` payload (instrumented systems only).

        Convenience wrapper of :func:`repro.obs.metrics_snapshot`; ``extra``
        keys are folded into the provenance block.
        """
        from repro.obs import export as obs_export

        return obs_export.metrics_snapshot(self, **extra)


def build_system(config: Optional[SystemConfig] = None, **overrides: Any) -> BroadcastSystem:
    """Convenience constructor: ``build_system(n=5, stack="gm", seed=7)``."""
    if config is None:
        config = SystemConfig(**overrides)
    elif overrides:
        if "algorithm" in overrides:
            warnings.warn(_DEPRECATED_ALGORITHM, DeprecationWarning, stacklevel=2)
            overrides.setdefault("stack", overrides.pop("algorithm"))
        stack_override = overrides.get("stack")
        if stack_override:
            # Fold a slash-qualified override ("fd/heartbeat") into the two
            # fields, since replace() re-passes the existing fd_kind.
            base, embedded = stack_registry.split_stack(stack_override)
            if embedded is not None:
                if overrides.get("fd_kind", embedded) != embedded:
                    raise ValueError(
                        f"conflicting failure detector selection: stack "
                        f"{stack_override!r} vs fd_kind={overrides['fd_kind']!r}"
                    )
                overrides["stack"] = base
                overrides["fd_kind"] = embedded
        config = replace(config, **overrides)
    return BroadcastSystem(config)
