"""Trace recorders: capture the message exchange and deliveries of a run.

The paper's comparison rests on the observation that the two algorithms
generate the same exchange of messages in suspicion-free runs (Fig. 1).
:class:`MessageTraceRecorder` captures every send that reaches the network
model (time, sender, remote destinations, protocol), which makes that kind
of claim directly checkable; :class:`DeliveryTraceRecorder` captures every
A-delivery.  Both are used by the integration tests and are handy for
debugging protocol changes.

Both recorders are plain subscribers of the instrumentation hook API
(:mod:`repro.obs`): attaching one enables the system's instrumentation and
subscribes to the relevant hook; :meth:`~MessageTraceRecorder.detach`
unsubscribes.  (Earlier versions spliced into ``network.send`` by attribute
assignment, which broke when two stacked recorders were detached in attach
order -- restoring the saved ``send`` re-installed the other recorder's
dead closure.  Subscriptions compose in any order.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.types import BroadcastID


@dataclass(frozen=True)
class TracedMessage:
    """One message captured by :class:`MessageTraceRecorder`."""

    time: float
    sender: int
    destinations: Tuple[int, ...]
    protocol: str

    @property
    def is_multicast(self) -> bool:
        """Whether the message had more than one remote destination."""
        return len(self.destinations) > 1


class MessageTraceRecorder:
    """Records every message injected into a system's network."""

    def __init__(self, system, include_protocols: Optional[Tuple[str, ...]] = None) -> None:
        self.system = system
        self.include_protocols = include_protocols
        self.messages: List[TracedMessage] = []
        self._obs = system.enable_instrumentation()
        self._obs.subscribe("message_send", self._on_send)

    def _on_send(self, time: float, message, dropped: bool) -> None:
        if self.include_protocols is None or message.protocol in self.include_protocols:
            self.messages.append(
                TracedMessage(
                    time=round(time, 9),
                    sender=message.sender,
                    destinations=tuple(sorted(message.remote_destinations())),
                    protocol=message.protocol,
                )
            )

    def detach(self) -> None:
        """Stop recording (the instrumentation stays enabled; other
        subscribers -- stacked recorders included -- keep working)."""
        self._obs.unsubscribe("message_send", self._on_send)

    # ------------------------------------------------------------------ queries

    def pattern(self) -> List[Tuple[float, int, Tuple[int, ...]]]:
        """The (time, sender, destinations) pattern, protocol-agnostic.

        Two algorithm implementations that "generate the same exchange of
        messages" produce equal patterns even though the protocol names and
        payloads differ.
        """
        return [(m.time, m.sender, m.destinations) for m in self.messages]

    def counts_by_protocol(self) -> Dict[str, int]:
        """Number of captured messages per protocol name."""
        counts: Dict[str, int] = {}
        for message in self.messages:
            counts[message.protocol] = counts.get(message.protocol, 0) + 1
        return counts

    def multicast_count(self) -> int:
        """Number of captured multicasts."""
        return sum(1 for m in self.messages if m.is_multicast)

    def unicast_count(self) -> int:
        """Number of captured unicasts."""
        return sum(1 for m in self.messages if not m.is_multicast and m.destinations)


@dataclass(frozen=True)
class TracedDelivery:
    """One A-delivery captured by :class:`DeliveryTraceRecorder`."""

    time: float
    process: int
    broadcast_id: BroadcastID
    payload: Any


class DeliveryTraceRecorder:
    """Records every A-delivery of a system, on every process."""

    def __init__(self, system) -> None:
        self.system = system
        self.deliveries: List[TracedDelivery] = []
        self._obs = system.enable_instrumentation()
        self._obs.subscribe("abcast_deliver", self._on_delivery)

    def _on_delivery(self, time: float, pid: int, broadcast_id: BroadcastID, payload: Any) -> None:
        self.deliveries.append(
            TracedDelivery(
                time=round(time, 9),
                process=pid,
                broadcast_id=broadcast_id,
                payload=payload,
            )
        )

    def detach(self) -> None:
        """Stop recording."""
        self._obs.unsubscribe("abcast_deliver", self._on_delivery)

    # ------------------------------------------------------------------ queries

    def sequence_for(self, pid: int) -> List[BroadcastID]:
        """Delivery order observed by process ``pid``."""
        return [d.broadcast_id for d in self.deliveries if d.process == pid]

    def first_delivery_times(self) -> Dict[BroadcastID, float]:
        """Earliest delivery time of every message."""
        times: Dict[BroadcastID, float] = {}
        for delivery in self.deliveries:
            current = times.get(delivery.broadcast_id)
            if current is None or delivery.time < current:
                times[delivery.broadcast_id] = delivery.time
        return times

    def time_multiset(self) -> List[Tuple[float, int]]:
        """Sorted multiset of (time, process) pairs -- latency fingerprint."""
        return sorted((d.time, d.process) for d in self.deliveries)

    def total_order_holds(self) -> bool:
        """Whether all per-process sequences are prefixes of one another."""
        sequences = [
            self.sequence_for(pid) for pid in range(self.system.config.n)
        ]
        for i, first in enumerate(sequences):
            for second in sequences[i + 1 :]:
                prefix = min(len(first), len(second))
                if first[:prefix] != second[:prefix]:
                    return False
        return True
