"""Analysis utilities: analytical latency models and run tracing.

* :mod:`repro.analysis.model` -- closed-form predictions of the zero-load
  latency and per-message cost of both algorithms under the paper's network
  model.  Used to sanity-check the simulator (the simulated latency at very
  low throughput must match the prediction exactly) and handy for quick
  what-if estimates without running a simulation.
* :mod:`repro.analysis.tracing` -- recorders that capture the message
  exchange and the delivery schedule of a run, used by the Fig. 1
  regression test and available to library users for debugging.
"""

from repro.analysis.model import CostModel, MessageCost, predicted_latency
from repro.analysis.tracing import DeliveryTraceRecorder, MessageTraceRecorder

__all__ = [
    "CostModel",
    "DeliveryTraceRecorder",
    "MessageCost",
    "MessageTraceRecorder",
    "predicted_latency",
]
