"""repro -- reproduction of *Comparison of Failure Detectors and Group
Membership: Performance Study of Two Atomic Broadcast Algorithms* (Urbán,
Shnayderman, Schiper -- DSN 2003).

The package provides:

* a deterministic discrete-event simulation of the paper's contention-aware
  network model (:mod:`repro.sim`),
* QoS-modelled failure detectors (:mod:`repro.failure_detectors`),
* the two atomic broadcast algorithms and their substrates -- reliable
  broadcast, Chandra-Toueg consensus, group membership, state transfer
  (:mod:`repro.core`),
* workload generation, latency metrics and the paper's four benchmark
  scenarios (:mod:`repro.workload`, :mod:`repro.metrics`,
  :mod:`repro.scenarios`),
* the experiment harness regenerating every figure of the evaluation
  (:mod:`repro.experiments`),
* an active-replication example substrate (:mod:`repro.replication`).

Quickstart::

    from repro import SystemConfig, build_system

    system = build_system(SystemConfig(n=3, stack="fd", seed=1))
    system.start()
    system.broadcast(sender=0, payload="hello")
    system.run(until=100.0)
    print(system.abcast(0).delivered)
"""

# Defined before the imports below: submodules (e.g. repro.obs.export) read
# it back during package initialisation to stamp provenance.
__version__ = "1.0.0"

from repro.core.types import AtomicBroadcast, BroadcastID, View
from repro.failure_detectors.heartbeat import HeartbeatConfig
from repro.failure_detectors.qos import QoSConfig
from repro.stacks import (
    StackSpec,
    available_fd_kinds,
    available_stacks,
    register_fd_kind,
    register_stack,
)
from repro.system import ALGORITHMS, BroadcastSystem, SystemConfig, build_system

__all__ = [
    "ALGORITHMS",
    "AtomicBroadcast",
    "BroadcastID",
    "BroadcastSystem",
    "HeartbeatConfig",
    "QoSConfig",
    "StackSpec",
    "SystemConfig",
    "View",
    "available_fd_kinds",
    "available_stacks",
    "build_system",
    "register_fd_kind",
    "register_stack",
    "__version__",
]
