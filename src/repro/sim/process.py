"""Simulated processes and protocol components.

A :class:`SimProcess` hosts a set of named protocol components (the
equivalent of a Neko protocol stack): consensus, reliable broadcast, atomic
broadcast, group membership...  Components send messages through the process,
receive messages dispatched by protocol name, and can set timers.

Crashing a process stops all its activity: timers no longer fire, incoming
messages are discarded and outgoing sends are dropped by the network
(software-crash semantics are enforced by :class:`repro.sim.network.Network`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence

from repro.obs.instrumentation import NULL
from repro.sim.engine import EventHandle, Simulator
from repro.sim.messages import Message
from repro.sim.network import Network


class Component:
    """Base class for protocol components attached to a :class:`SimProcess`.

    Subclasses define ``protocol`` (the dispatch name) and override
    :meth:`on_message`.  They are registered automatically at construction.
    """

    #: Dispatch name; subclasses must override it.
    protocol: str = ""

    def __init__(self, process: "SimProcess") -> None:
        if not self.protocol:
            raise ValueError(f"{type(self).__name__} must define a protocol name")
        self.process = process
        #: Instrumentation hook sink; :data:`repro.obs.NULL` (one no-op call
        #: per hook site) until the system enables instrumentation, which
        #: rewires every component in place.
        self._obs = process.obs
        process.register_component(self.protocol, self)

    # -- convenience accessors -------------------------------------------------

    @property
    def pid(self) -> int:
        """Process id of the hosting process."""
        return self.process.pid

    @property
    def sim(self) -> Simulator:
        """The simulation kernel."""
        return self.process.sim

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.process.sim.now

    # -- messaging ---------------------------------------------------------------

    def send(self, destinations: Sequence[int], body: Any) -> None:
        """Send ``body`` to ``destinations`` under this component's protocol."""
        self.process.send(self.protocol, destinations, body)

    def send_one(self, destination: int, body: Any) -> None:
        """Send ``body`` to a single destination."""
        self.process.send(self.protocol, [destination], body)

    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback`` unless the process crashes first."""
        return self.process.set_timer(delay, callback, *args)

    # -- hooks --------------------------------------------------------------------

    def start(self) -> None:
        """Hook called once when the simulation starts."""

    def on_message(self, sender: int, body: Any) -> None:
        """Handle a message dispatched to this component."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Hook called when the hosting process crashes."""

    def on_recover(self) -> None:
        """Hook called when the hosting process recovers from a crash."""


class SimProcess:
    """A process of the distributed system under simulation."""

    def __init__(self, sim: Simulator, network: Network, pid: int) -> None:
        self.sim = sim
        self.network = network
        self.pid = pid
        self._components: Dict[str, Component] = {}
        self._crashed = False
        self._timers: List[EventHandle] = []
        # Amortized prune threshold: ``_timers`` only exists so ``crash()``
        # can cancel pending timers, so fired/cancelled handles are swept out
        # once the list doubles past this mark (long steady runs would
        # otherwise keep one dead handle per timer ever set).
        self._timer_prune_at = 128
        #: Failure detector attached to this process (set by the system builder).
        self.failure_detector = None
        #: Instrumentation components inherit at construction (NULL = off).
        self.obs = NULL
        network.attach(pid, self._on_network_delivery)

    # ------------------------------------------------------------------ components

    def register_component(self, protocol: str, component: Component) -> None:
        """Register ``component`` under dispatch name ``protocol``."""
        if protocol in self._components:
            raise ValueError(f"protocol {protocol!r} already registered on process {self.pid}")
        self._components[protocol] = component

    def component(self, protocol: str) -> Component:
        """Return the component registered under ``protocol``."""
        return self._components[protocol]

    def has_component(self, protocol: str) -> bool:
        """Whether a component is registered under ``protocol``."""
        return protocol in self._components

    def components(self) -> Iterable[Component]:
        """All registered components."""
        return self._components.values()

    def start(self) -> None:
        """Invoke the ``start`` hook of every component."""
        for component in self._components.values():
            component.start()

    # ------------------------------------------------------------------ messaging

    def send(self, protocol: str, destinations: Sequence[int], body: Any) -> None:
        """Send ``body`` to ``destinations``; dropped if this process crashed."""
        if self._crashed:
            return
        message = Message(
            sender=self.pid,
            destinations=tuple(destinations),
            protocol=protocol,
            body=body,
        )
        self.network.send(message)

    def _on_network_delivery(self, pid: int, message: Message) -> None:
        if self._crashed:
            return
        component = self._components.get(message.protocol)
        if component is None:
            raise RuntimeError(
                f"process {self.pid} has no component for protocol {message.protocol!r}"
            )
        component.on_message(message.sender, message.body)

    # ------------------------------------------------------------------ timers

    def set_timer(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)``; silently skipped if crashed by then."""
        handle = self.sim.schedule(delay, self._fire_timer, callback, args)
        timers = self._timers
        timers.append(handle)
        if len(timers) >= self._timer_prune_at:
            # Handles that fired or were cancelled no longer need cancelling
            # on crash; dropping them is invisible to the simulation.
            now = self.sim.now
            timers[:] = [h for h in timers if not h.cancelled and h.time >= now]
            self._timer_prune_at = max(128, 2 * len(timers))
        return handle

    def _fire_timer(self, callback: Callable[..., Any], args: tuple) -> None:
        if self._crashed:
            return
        callback(*args)

    # ------------------------------------------------------------------ crash

    @property
    def crashed(self) -> bool:
        """Whether this process has crashed."""
        return self._crashed

    def crash(self) -> None:
        """Crash the process now (idempotent)."""
        if self._crashed:
            return
        self._crashed = True
        self.network.crash(self.pid)
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()
        for component in self._components.values():
            component.on_crash()

    def recover(self) -> None:
        """Recover the process now (idempotent; no-op if it never crashed).

        All protocol state survives the crash (warm restart); components that
        need to reconcile with the rest of the system do so in their
        ``on_recover`` hook (catch-up requests, rejoin protocol, ...).
        """
        if not self._crashed:
            return
        self._crashed = False
        self.network.recover(self.pid)
        for component in self._components.values():
            component.on_recover()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "crashed" if self._crashed else "up"
        return f"SimProcess(pid={self.pid}, {state}, components={sorted(self._components)})"
