"""FIFO contention resources.

The network model of the paper (Fig. 2) is built from resources that serve
one message at a time: one CPU resource per host and one shared network
resource.  A message that finds the resource busy waits in a FIFO queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator


class FIFOResource:
    """A resource that serves jobs one at a time in arrival order.

    Jobs are submitted with :meth:`submit`; when a job finishes its service
    time the ``on_done`` callback fires and the next queued job (if any)
    starts immediately.  Callback arguments can be passed through ``submit``
    directly, which lets hot callers dispatch to a preallocated bound method
    instead of allocating a closure per job.
    """

    __slots__ = (
        "_sim",
        "name",
        "_busy",
        "_queue",
        "_jobs_served",
        "_busy_time",
        "_current_job_end",
        "_rate_factor",
    )

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self._busy = False
        self._queue: Deque[Tuple[float, Callable[..., Any], tuple]] = deque()
        self._jobs_served = 0
        self._busy_time = 0.0
        self._current_job_end: Optional[float] = None
        self._rate_factor = 1.0

    @property
    def rate_factor(self) -> float:
        """Current service-time multiplier (1.0 = full speed)."""
        return self._rate_factor

    def set_rate_factor(self, factor: float) -> None:
        """Scale every *subsequently submitted* job's service time by ``factor``.

        Models a gray failure: the resource stays alive and correct, just
        slower.  Jobs already queued keep the factor they were submitted
        under (their service demand was fixed at submission).
        """
        if factor <= 0:
            raise ValueError(f"rate factor must be > 0, got {factor}")
        self._rate_factor = factor

    @property
    def busy(self) -> bool:
        """Whether a job is currently in service."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def jobs_served(self) -> int:
        """Total number of jobs that completed service."""
        return self._jobs_served

    @property
    def busy_time(self) -> float:
        """Cumulative time the resource spent serving jobs."""
        return self._busy_time

    def utilization(self, horizon: float) -> float:
        """Fraction of ``horizon`` the resource was busy (for diagnostics)."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / horizon)

    def submit(
        self, service_time: float, on_done: Callable[..., Any], *args: Any
    ) -> None:
        """Request ``service_time`` units of service, then ``on_done(*args)``.

        A ``service_time`` of zero is served immediately when the resource is
        idle (and still respects FIFO order when it is not).
        """
        if service_time < 0:
            raise ValueError(f"service time must be non-negative, got {service_time}")
        if self._rate_factor != 1.0:  # gray-degraded: off path stays branch-only
            service_time = service_time * self._rate_factor
        if self._busy:
            self._queue.append((service_time, on_done, args))
        else:
            # Start inlined: every message pays this path three times (emit,
            # transmit, receive), so the extra call frame is measurable.
            sim = self._sim
            self._busy = True
            self._current_job_end = sim.now + service_time
            sim.schedule(service_time, self._finish, service_time, on_done, args)

    def _finish(
        self, service_time: float, on_done: Callable[..., Any], args: tuple
    ) -> None:
        self._busy_time += service_time
        self._jobs_served += 1
        on_done(*args)
        if self._queue:
            next_service, next_done, next_args = self._queue.popleft()
            sim = self._sim
            self._current_job_end = sim.now + next_service
            sim.schedule(next_service, self._finish, next_service, next_done, next_args)
        else:
            self._busy = False
            self._current_job_end = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FIFOResource({self.name!r}, busy={self._busy}, queued={len(self._queue)})"
