"""Named WAN latency profiles: multi-datacenter per-pair delay topologies.

A :class:`WanProfile` generalizes ``QoSConfig.pair_overrides`` into a
reusable, named object: a small datacenter-level latency matrix that is
expanded to a per-process ``n x n`` delay matrix (process ``pid`` lives in
datacenter ``pid % dc_count``, spreading every group evenly across sites).
The delays model pure propagation latency on the WAN backbone between
datacenters -- they occupy no contended resource and are added between the
shared-medium transmission and the receiving CPU
(:meth:`repro.sim.network.Network.set_wan_delays`).

Profiles are selected by *name* (``SystemConfig(wan_profile="wan-3dc")`` or
``--wan-profile`` on the CLIs) so they stay hashable campaign dimensions;
:func:`register_wan_profile` adds new topologies the same way
``register_stack`` adds protocol stacks.

All latencies are in the paper's time units (the LAN ``network_time`` is 1),
one-way, and symmetric in the built-in profiles -- asymmetric matrices are
allowed for custom profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WanProfile:
    """A named datacenter topology: one-way latency between any two sites.

    Attributes
    ----------
    name:
        Registry key (also the campaign cache-key dimension value).
    description:
        One-line human description for catalogs and ``--help`` text.
    latency_matrix:
        ``dc x dc`` one-way propagation delays; the diagonal must be zero
        (intra-datacenter traffic only pays the LAN contention model).
    """

    name: str
    description: str
    latency_matrix: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        size = len(self.latency_matrix)
        if size < 2:
            raise ValueError("a WAN profile needs at least two datacenters")
        for row in self.latency_matrix:
            if len(row) != size:
                raise ValueError("the latency matrix must be square")
            if any(delay < 0 for delay in row):
                raise ValueError("WAN latencies must be >= 0")
        for index in range(size):
            if self.latency_matrix[index][index] != 0.0:
                raise ValueError("intra-datacenter latency must be zero")

    @property
    def dc_count(self) -> int:
        """Number of datacenters in the topology."""
        return len(self.latency_matrix)

    def dc_of(self, pid: int) -> int:
        """The datacenter hosting process ``pid`` (round-robin placement)."""
        return pid % self.dc_count

    def delay(self, src: int, dst: int) -> float:
        """One-way propagation delay between the hosts of two processes."""
        return self.latency_matrix[self.dc_of(src)][self.dc_of(dst)]

    def delays(self, n: int) -> List[List[float]]:
        """The expanded ``n x n`` per-process delay matrix."""
        return [[self.delay(src, dst) for dst in range(n)] for src in range(n)]

    def max_delay(self) -> float:
        """The largest one-way latency in the topology."""
        return max(delay for row in self.latency_matrix for delay in row)

    def derive_fd_config(self, base, n: int, slack: float = 2.0):
        """A per-pair failure detector config matched to this topology.

        Returns ``base`` (any config with ``QoSConfig``-style ``with_pair``)
        with the detection time of every cross-datacenter monitor pair
        raised by ``slack`` round trips of that pair's latency, so WAN lag
        alone never looks like a crash.  This is the ``pair_overrides``
        generalization: one profile derives the whole override table.
        """
        derived = base
        base_detection = base.detection_time
        for monitor in range(n):
            for monitored in range(n):
                if monitor == monitored:
                    continue
                extra = slack * 2.0 * self.delay(monitored, monitor)
                if extra > 0.0:
                    derived = derived.with_pair(
                        monitor, monitored, detection_time=base_detection + extra
                    )
        return derived


#: The registry of selectable profiles, keyed by name.
WAN_PROFILES: Dict[str, WanProfile] = {}


def register_wan_profile(profile: WanProfile) -> WanProfile:
    """Add ``profile`` to the registry (name collisions are an error)."""
    if profile.name in WAN_PROFILES:
        raise ValueError(f"WAN profile {profile.name!r} is already registered")
    WAN_PROFILES[profile.name] = profile
    return profile


def wan_profile(name: str) -> WanProfile:
    """Look up a registered profile by name."""
    try:
        return WAN_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(WAN_PROFILES)) or "none"
        raise ValueError(f"unknown WAN profile {name!r} (registered: {known})") from None


def wan_profile_names() -> Tuple[str, ...]:
    """The registered profile names, sorted."""
    return tuple(sorted(WAN_PROFILES))


# ---------------------------------------------------------------------- built-ins

#: Three sites in a line (e.g. two coastal regions plus one in between):
#: near pair at 20, far pair at 40 time units one way.
register_wan_profile(
    WanProfile(
        name="wan-3dc",
        description="three datacenters, 20/30/40 one-way latencies",
        latency_matrix=(
            (0.0, 20.0, 40.0),
            (20.0, 0.0, 30.0),
            (40.0, 30.0, 0.0),
        ),
    )
)

#: Five sites across two continents: a tight triangle (10-20) plus two
#: remote sites at 50-80 one way.
register_wan_profile(
    WanProfile(
        name="wan-5dc",
        description="five datacenters, two continents, 10-80 one-way latencies",
        latency_matrix=(
            (0.0, 10.0, 20.0, 50.0, 60.0),
            (10.0, 0.0, 15.0, 55.0, 65.0),
            (20.0, 15.0, 0.0, 60.0, 70.0),
            (50.0, 55.0, 60.0, 0.0, 30.0),
            (60.0, 65.0, 70.0, 30.0, 0.0),
        ),
    )
)
