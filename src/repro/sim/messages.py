"""Message representation used by the network model and protocol components."""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

_message_counter = itertools.count()


class Message:
    """A message travelling through the simulated network.

    A plain slotted class rather than a dataclass: messages are the single
    most-allocated protocol object in the simulator, and ``__slots__`` plus
    an eagerly cached remote-destination tuple keep per-send allocation flat
    (the seed dataclass rebuilt the same tuple up to three times per send).
    Identity equality is intentional -- ``uid`` is globally unique, so value
    equality would coincide with identity anyway.

    Attributes
    ----------
    sender:
        Process id of the sending process.
    destinations:
        Tuple of destination process ids.  A destination equal to the sender
        is delivered locally without occupying any resource.
    protocol:
        Name of the protocol component the message is dispatched to on the
        receiving process (``"consensus"``, ``"abcast"``, ``"gm"`` ...).
    body:
        Arbitrary (treated as immutable) protocol payload.
    uid:
        Globally unique message identifier, assigned automatically.
    """

    __slots__ = ("sender", "destinations", "protocol", "body", "uid", "_remote")

    def __init__(
        self,
        sender: int,
        destinations: Tuple[int, ...],
        protocol: str,
        body: Any,
        uid: Optional[int] = None,
    ):
        self.sender = sender
        self.destinations = destinations
        self.protocol = protocol
        self.body = body
        self.uid = next(_message_counter) if uid is None else uid
        self._remote = tuple(d for d in destinations if d != sender)

    def is_multicast(self) -> bool:
        """True when the message has more than one remote destination."""
        return len(self._remote) > 1

    def remote_destinations(self) -> Tuple[int, ...]:
        """Destinations other than the sender itself (cached at creation)."""
        return self._remote

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(#{self.uid} {self.sender}->{list(self.destinations)} "
            f"proto={self.protocol} {self.body!r})"
        )
