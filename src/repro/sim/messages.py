"""Message representation used by the network model and protocol components."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Tuple

_message_counter = itertools.count()


@dataclass(frozen=True)
class Message:
    """A message travelling through the simulated network.

    Attributes
    ----------
    sender:
        Process id of the sending process.
    destinations:
        Tuple of destination process ids.  A destination equal to the sender
        is delivered locally without occupying any resource.
    protocol:
        Name of the protocol component the message is dispatched to on the
        receiving process (``"consensus"``, ``"abcast"``, ``"gm"`` ...).
    body:
        Arbitrary (treated as immutable) protocol payload.
    uid:
        Globally unique message identifier, assigned automatically.
    """

    sender: int
    destinations: Tuple[int, ...]
    protocol: str
    body: Any
    uid: int = field(default_factory=lambda: next(_message_counter))

    def is_multicast(self) -> bool:
        """True when the message has more than one remote destination."""
        remote = [d for d in self.destinations if d != self.sender]
        return len(remote) > 1

    def remote_destinations(self) -> Tuple[int, ...]:
        """Destinations other than the sender itself."""
        return tuple(d for d in self.destinations if d != self.sender)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(#{self.uid} {self.sender}->{list(self.destinations)} "
            f"proto={self.protocol} {self.body!r})"
        )
