"""Deterministic discrete-event simulation kernel.

The kernel is a plain priority queue of timestamped callbacks.  Events
scheduled for the same simulation time fire in the order they were scheduled,
which makes every run fully deterministic for a given seed.  Simulation time
is a ``float``; by convention one unit is the network transmission time of a
single message (interpreted as 1 ms in the paper's plots).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class EventHandle:
    """Handle of a scheduled event, usable for cancellation.

    Instances are ordered by ``(time, sequence number)`` so they can live
    directly on the kernel's heap.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=1000.0)
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._processed: int = 0
        self._exhausted: bool = False
        #: Instrumentation, or ``None`` for the hook-free fast run loop.
        self._obs = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._processed

    @property
    def run_exhausted(self) -> bool:
        """Whether the last :meth:`run` ended because ``max_events`` was hit.

        Distinguishes "the event budget ran out with work still queued" from
        "the queue drained / ``until`` was reached / :meth:`stop` was called"
        -- with ``until`` set, a budget-exhausted run does not advance
        ``now``, so the end time alone cannot tell the two apart.
        """
        return self._exhausted

    def set_instrumentation(self, obs) -> None:
        """Attach an :class:`repro.obs.Instrumentation` (or ``None`` to detach).

        With instrumentation attached, :meth:`run` uses a hook-emitting loop
        that reports per-category event counts and the queue-depth high-water
        mark; without it, the byte-identical hook-free loop runs -- the
        "trace off" fast path, which pays nothing per event.
        """
        self._obs = obs if obs is not None and obs.enabled else None

    @property
    def pending_events(self) -> int:
        """Number of events still waiting on the queue (cancelled included)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def stop(self) -> None:
        """Stop the current :meth:`run` after the event being processed."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached or ``stop``.

        Returns the simulation time at which the run ended.  Events scheduled
        exactly at ``until`` are executed.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        self._exhausted = False
        try:
            if self._obs is None:
                self._run_fast(until, max_events)
            else:
                self._run_instrumented(until, max_events)
        finally:
            self._running = False
        return self._now

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The hook-free event loop (instrumentation off: the hot path)."""
        executed = 0
        while self._queue and not self._stopped:
            if max_events is not None and executed >= max_events:
                self._exhausted = True
                break
            head = self._queue[0]
            if until is not None and head.time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if head.cancelled:
                continue
            self._now = head.time
            head.callback(*head.args)
            self._processed += 1
            executed += 1
        else:
            if until is not None and not self._queue and self._now < until:
                self._now = until

    def _run_instrumented(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The same loop, emitting per-event hooks.

        Control flow is identical to :meth:`_run_fast`; the hooks only
        *observe* (queue depth is sampled at the top of each iteration,
        which captures the exact high-water mark because the depth only
        grows during callbacks and each callback is followed by another
        iteration).  Kept separate so the off path never branches per event.
        """
        obs = self._obs
        executed = 0
        while self._queue and not self._stopped:
            obs.queue_depth(len(self._queue))
            if max_events is not None and executed >= max_events:
                self._exhausted = True
                break
            head = self._queue[0]
            if until is not None and head.time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if head.cancelled:
                continue
            self._now = head.time
            head.callback(*head.args)
            self._processed += 1
            executed += 1
            obs.sim_event(head.time, _callback_category(head.callback))
        else:
            if until is not None and not self._queue and self._now < until:
                self._now = until

    def run_until_empty(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events`` as a guard)."""
        return self.run(max_events=max_events)

    def reset(self) -> None:
        """Clear all state so the simulator can be reused from time zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._queue.clear()
        self._seq = 0
        self._processed = 0
        self._stopped = False
        self._exhausted = False


def _callback_category(callback: Callable[..., Any]) -> str:
    """Event-loop category of a callback: its defining class and method.

    ``Network._emitted`` -> ``"Network._emitted"``; closures collapse to the
    function that created them (``FIFOResource.submit.<locals>.<lambda>`` ->
    ``"FIFOResource.submit"``), which is the granularity the event-loop
    profile wants.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    return qualname.split(".<locals>", 1)[0]
