"""Deterministic discrete-event simulation kernel.

The kernel is a plain priority queue of timestamped callbacks.  Events
scheduled for the same simulation time fire in the order they were scheduled,
which makes every run fully deterministic for a given seed.  Simulation time
is a ``float``; by convention one unit is the network transmission time of a
single message (interpreted as 1 ms in the paper's plots).

Hot-path notes.  The run loop keeps the queue and the heap primitives in
locals, cancelled events are *counted* so the heap can be compacted in place
when more than half of it is dead weight (timer-heavy failure detector
workloads cancel constantly and would otherwise carry every dead timer until
its time came), and the instrumented loop is kept as a separate method so the
instrumentation-off path never branches per event.  None of this changes
which events execute or in which order: ``events_processed`` and every
delivered sequence stay bit-identical to the pre-optimisation kernel (pinned
by the golden tests and the kernel-equivalence property suite).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

#: Compaction threshold: never compact below this many cancelled events (the
#: rebuild is O(queue), so tiny queues are not worth touching).
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly."""


class EventHandle:
    """Handle of a scheduled event, usable for cancellation.

    The kernel's heap stores ``(time, seq, handle)`` tuples, so heap
    comparisons run entirely in C on the leading floats and never reach the
    handle (``(time, seq)`` is unique).  Handles still order themselves by
    ``(time, seq)`` for callers that sort them directly.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_cancel_box")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator's cancelled-event counter cell (``None`` for
        #: handles created outside a simulator, e.g. in unit tests).
        self._cancel_box = None

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            box = self._cancel_box
            if box is not None:
                box[0] += 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=1000.0)
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_running",
        "_stopped",
        "_processed",
        "_exhausted",
        "_obs",
        "_cancel_box",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._processed: int = 0
        self._exhausted: bool = False
        #: Instrumentation, or ``None`` for the hook-free fast run loop.
        self._obs = None
        #: Shared one-cell counter of cancelled events still on the heap.
        #: Handles hold a reference so ``cancel()`` stays O(1) and allocation
        #: free; the scheduler compacts the heap when the cell outgrows half
        #: the queue.
        self._cancel_box: List[int] = [0]

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._processed

    @property
    def run_exhausted(self) -> bool:
        """Whether the last :meth:`run` ended because ``max_events`` was hit.

        Distinguishes "the event budget ran out with work still queued" from
        "the queue drained / ``until`` was reached / :meth:`stop` was called"
        -- with ``until`` set, a budget-exhausted run does not advance
        ``now``, so the end time alone cannot tell the two apart.
        """
        return self._exhausted

    def set_instrumentation(self, obs) -> None:
        """Attach an :class:`repro.obs.Instrumentation` (or ``None`` to detach).

        With instrumentation attached, :meth:`run` uses a hook-emitting loop
        that reports per-category event counts and the queue-depth high-water
        mark; without it, the byte-identical hook-free loop runs -- the
        "trace off" fast path, which pays nothing per event.
        """
        self._obs = obs if obs is not None and obs.enabled else None

    @property
    def pending_events(self) -> int:
        """Number of events still waiting on the queue (cancelled included)."""
        return len(self._queue)

    @property
    def cancelled_pending_events(self) -> int:
        """Cancelled events still occupying the queue (compaction trigger)."""
        return self._cancel_box[0]

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        This is the hottest scheduling entry point (every timer, resource
        completion and pipeline hop goes through it), so it inlines
        :meth:`schedule_at` instead of delegating -- ``delay >= 0`` already
        guarantees the event is not in the past.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        box = self._cancel_box
        handle._cancel_box = box
        queue = self._queue
        heapq.heappush(queue, (time, seq, handle))
        cancelled = box[0]
        if cancelled >= _COMPACT_MIN and cancelled * 2 > len(queue):
            self._compact()
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        handle._cancel_box = self._cancel_box
        queue = self._queue
        heapq.heappush(queue, (time, seq, handle))
        cancelled = self._cancel_box[0]
        if cancelled >= _COMPACT_MIN and cancelled * 2 > len(queue):
            self._compact()
        return handle

    def _compact(self) -> None:
        """Drop cancelled events from the heap, in place.

        In place matters: a :meth:`run` loop in progress holds a local
        reference to the queue list, so the rebuild must not rebind it.
        Cancelled events never execute, so compaction is invisible to the
        simulation -- it only shrinks :attr:`pending_events`.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancel_box[0] = 0

    def stop(self) -> None:
        """Stop the current :meth:`run` after the event being processed."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached or ``stop``.

        Returns the simulation time at which the run ended.  Events scheduled
        exactly at ``until`` are executed.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        self._exhausted = False
        try:
            if self._obs is None:
                self._run_fast(until, max_events)
            else:
                self._run_instrumented(until, max_events)
        finally:
            self._running = False
        return self._now

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The hook-free event loop (instrumentation off: the hot path).

        Control flow is check-for-check the seed loop (budget, ``until``,
        cancellation, stop), with the queue, the heap pop and the budget
        hoisted out of the loop; the event count is folded back into
        ``_processed`` on exit (exceptions included) so external observers
        see the same counter the per-iteration increment produced.
        """
        queue = self._queue
        pop = heapq.heappop
        box = self._cancel_box
        budget = max_events if max_events is not None else float("inf")
        executed = 0
        try:
            while queue and not self._stopped:
                if executed >= budget:
                    self._exhausted = True
                    break
                head_time = queue[0][0]
                if until is not None and head_time > until:
                    self._now = until
                    break
                head = pop(queue)[2]
                if head.cancelled:
                    box[0] -= 1
                    continue
                self._now = head_time
                head.callback(*head.args)
                executed += 1
            else:
                if until is not None and not queue and self._now < until:
                    self._now = until
        finally:
            self._processed += executed

    def _run_instrumented(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The same loop, emitting per-event hooks.

        Control flow is identical to :meth:`_run_fast`; the hooks only
        *observe* (queue depth is sampled at the top of each iteration,
        which captures the exact high-water mark because the depth only
        grows during callbacks and each callback is followed by another
        iteration).  Kept separate so the off path never branches per event.
        """
        obs = self._obs
        queue = self._queue
        pop = heapq.heappop
        box = self._cancel_box
        budget = max_events if max_events is not None else float("inf")
        executed = 0
        try:
            while queue and not self._stopped:
                obs.queue_depth(len(queue))
                if executed >= budget:
                    self._exhausted = True
                    break
                head_time = queue[0][0]
                if until is not None and head_time > until:
                    self._now = until
                    break
                head = pop(queue)[2]
                if head.cancelled:
                    box[0] -= 1
                    continue
                self._now = head_time
                head.callback(*head.args)
                executed += 1
                obs.sim_event(head_time, _callback_category(head.callback))
            else:
                if until is not None and not queue and self._now < until:
                    self._now = until
        finally:
            self._processed += executed

    def run_until_empty(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (bounded by ``max_events`` as a guard)."""
        return self.run(max_events=max_events)

    def reset(self) -> None:
        """Clear all state so the simulator can be reused from time zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._now = 0.0
        self._queue.clear()
        self._seq = 0
        self._processed = 0
        self._stopped = False
        self._exhausted = False
        self._cancel_box[0] = 0


def _callback_category(callback: Callable[..., Any]) -> str:
    """Event-loop category of a callback: its defining class and method.

    ``Network._emitted`` -> ``"Network._emitted"``; closures collapse to the
    function that created them (``FIFOResource.submit.<locals>.<lambda>`` ->
    ``"FIFOResource.submit"``), which is the granularity the event-loop
    profile wants.  Bound methods (the closure-free dispatch path of the
    network and the FIFO resources) carry their ``__qualname__`` directly,
    so they keep resolving to ``Class.method`` buckets.
    """
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    return qualname.split(".<locals>", 1)[0]
