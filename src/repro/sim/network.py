"""Contention-aware network model (Fig. 2 of the paper).

A message sent from process ``p_i`` to process ``p_j`` successively occupies

1. ``CPU_i`` for ``lambda`` time units (emission processing),
2. the single shared ``network`` resource for 1 time unit (transmission),
3. ``CPU_j`` for ``lambda`` time units (reception processing),

with a FIFO waiting queue in front of every resource.  The parameter
``lambda`` captures the relative cost of host processing versus the network
transmission; the paper's published results use ``lambda = 1``.

A multicast occupies the sending CPU and the network once (Ethernet-like
broadcast medium) and each receiving CPU once.  A destination equal to the
sender is delivered locally, without occupying any resource.

Crashes follow the paper's *software crash* semantics: once ``p_i`` crashes,
no message passes between ``p_i`` and ``CPU_i`` any more, but messages that
were already handed to ``CPU_i`` (queued or in service) are still emitted.

The emission -> transmission -> reception pipeline dispatches through bound
methods with the message passed as an event argument: the seed allocated
three closures per remote destination per send, which dominated allocation
counts on multicast-heavy workloads.  The event sequence itself is
unchanged, so simulation results stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.resources import FIFOResource

DeliverCallback = Callable[[int, Message], None]
CrashListener = Callable[[int, float], None]
RecoveryListener = Callable[[int, float], None]
#: Called on every partition change with the new set of blocked directed
#: ``(src, dst)`` links (``None`` = fully healed) and the current time.
PartitionListener = Callable[[Optional[Set[tuple]], float], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the contention model.

    Attributes
    ----------
    n:
        Number of processes (ids ``0 .. n-1``).
    lambda_cpu:
        Time units spent on a host CPU to emit or to receive one message
        (``lambda`` in the paper).
    network_time:
        Time units one message occupies the shared network; the paper's time
        unit, fixed to 1 in all published experiments.
    """

    n: int
    lambda_cpu: float = 1.0
    network_time: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need at least one process, got n={self.n}")
        if self.lambda_cpu < 0:
            raise ValueError(f"lambda_cpu must be >= 0, got {self.lambda_cpu}")
        if self.network_time <= 0:
            raise ValueError(f"network_time must be > 0, got {self.network_time}")


class NetworkStats:
    """Counters describing the traffic a simulation produced."""

    __slots__ = (
        "messages_sent",
        "unicasts_sent",
        "multicasts_sent",
        "deliveries",
        "dropped_sender_crashed",
        "dropped_receiver_crashed",
        "dropped_partitioned",
        "dropped_lossy_link",
        "duplicated_link",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.unicasts_sent = 0
        self.multicasts_sent = 0
        self.deliveries = 0
        self.dropped_sender_crashed = 0
        self.dropped_receiver_crashed = 0
        self.dropped_partitioned = 0
        self.dropped_lossy_link = 0
        self.duplicated_link = 0

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, keyed by counter name."""
        return {name: getattr(self, name) for name in self.__slots__}


class Network:
    """The shared transmission medium plus one CPU resource per process.

    Deliberately *not* slotted: there is one network per run (slots would
    save nothing) and tests monkeypatch ``send`` to trace traffic.
    """

    def __init__(self, sim: Simulator, config: NetworkConfig) -> None:
        self._sim = sim
        self.config = config
        # Scalars the per-message pipeline reads, hoisted out of the frozen
        # dataclass (immutable for the lifetime of the network).
        self._n = config.n
        self._lambda_cpu = config.lambda_cpu
        self._network_time = config.network_time
        self._network = FIFOResource(sim, "network")
        self._cpus: List[FIFOResource] = [
            FIFOResource(sim, f"cpu[{pid}]") for pid in range(config.n)
        ]
        # Indexed by pid (``None`` until attached): the delivery fan-out is
        # the hottest consumer, and a list index beats a dict probe there.
        self._deliver_callbacks: List[Optional[DeliverCallback]] = [None] * config.n
        self._crashed: Set[int] = set()
        self._crash_times: Dict[int, float] = {}
        self._crash_listeners: List[CrashListener] = []
        self._recovery_listeners: List[RecoveryListener] = []
        self._partition_listeners: List[PartitionListener] = []
        # Link-fault state (partitions / WAN delays / gray links).  All three
        # stay ``None``/empty on the no-fault path; ``_link_faults_active``
        # folds them into the single branch ``_transmitted`` checks, so the
        # hot path of an unfaulted run is untouched.
        self._unreachable: Optional[Set[tuple]] = None
        self._wan_delays: Optional[List[List[float]]] = None
        self._gray_links: Dict[tuple, tuple] = {}
        self._link_rng = None
        self._link_faults_active = False
        self.stats = NetworkStats()
        #: Instrumentation, or ``None`` (checked with one branch per send /
        #: delivery so the uninstrumented hot path stays hook-free).
        self._obs = None

    def set_instrumentation(self, obs) -> None:
        """Attach an :class:`repro.obs.Instrumentation` (``None`` detaches)."""
        self._obs = obs if obs is not None and obs.enabled else None

    # ------------------------------------------------------------------ wiring

    @property
    def sim(self) -> Simulator:
        """The simulation kernel this network is attached to."""
        return self._sim

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    def attach(self, pid: int, callback: DeliverCallback) -> None:
        """Register the delivery callback of process ``pid``."""
        self._check_pid(pid)
        self._deliver_callbacks[pid] = callback

    def add_crash_listener(self, listener: CrashListener) -> None:
        """Register a callback invoked as ``listener(pid, time)`` on crashes."""
        self._crash_listeners.append(listener)

    def add_recovery_listener(self, listener: RecoveryListener) -> None:
        """Register a callback invoked as ``listener(pid, time)`` on recoveries."""
        self._recovery_listeners.append(listener)

    def add_partition_listener(self, listener: PartitionListener) -> None:
        """Register a callback invoked on every partition change / heal."""
        self._partition_listeners.append(listener)

    def set_link_rng(self, rng) -> None:
        """Attach the random stream that drives lossy/duplicating links."""
        self._link_rng = rng

    def cpu(self, pid: int) -> FIFOResource:
        """The CPU resource of process ``pid`` (useful for tests and stats)."""
        self._check_pid(pid)
        return self._cpus[pid]

    @property
    def network_resource(self) -> FIFOResource:
        """The shared network resource."""
        return self._network

    # ------------------------------------------------------------------ crashes

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` at the current simulation time.

        Idempotent.  Messages already handed to ``CPU_pid`` keep flowing
        (software-crash semantics); everything submitted afterwards is
        dropped, and nothing is delivered up to the crashed process.
        """
        self._check_pid(pid)
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        self._crash_times[pid] = self._sim.now
        for listener in list(self._crash_listeners):
            listener(pid, self._sim.now)

    def recover(self, pid: int) -> None:
        """Bring a crashed process back up at the current simulation time.

        Idempotent.  The recovered process sends and receives again from this
        instant on; messages dropped while it was down stay lost (the protocol
        layers are responsible for any catch-up / state transfer).  The crash
        time of the last crash is kept for inspection.
        """
        self._check_pid(pid)
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        for listener in list(self._recovery_listeners):
            listener(pid, self._sim.now)

    def is_crashed(self, pid: int) -> bool:
        """Whether ``pid`` has crashed."""
        self._check_pid(pid)
        return pid in self._crashed

    def crash_time(self, pid: int) -> Optional[float]:
        """Time at which ``pid`` crashed, or ``None`` if it did not."""
        self._check_pid(pid)
        return self._crash_times.get(pid)

    def crashed_processes(self) -> Set[int]:
        """The set of crashed process ids."""
        return set(self._crashed)

    def correct_processes(self) -> List[int]:
        """Process ids that have not crashed, in increasing order."""
        return [pid for pid in range(self._n) if pid not in self._crashed]

    # ------------------------------------------------------------------ link faults

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Partition the network symmetrically into ``groups``.

        Frames between different groups are dropped after transmission (they
        still occupy the sender CPU and the shared network -- the medium
        does not know the receiver is unreachable -- but never load the
        receiving CPU).  Pids not listed in any group become singletons.
        A new partition replaces the previous mask.
        """
        group_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for pid in group:
                self._check_pid(pid)
                if pid in group_of:
                    raise ValueError(f"pid {pid} appears in more than one group")
                group_of[pid] = index
        blocked: Set[tuple] = set()
        for src in range(self._n):
            side = group_of.get(src, -1 - src)  # unlisted pids are singletons
            for dst in range(self._n):
                if src != dst and side != group_of.get(dst, -1 - dst):
                    blocked.add((src, dst))
        self._set_unreachable(blocked if blocked else None)

    def block_links(self, links: Sequence[tuple]) -> None:
        """Block individual *directed* links (an asymmetric partition).

        Replaces the current partition mask, like :meth:`partition`.
        """
        blocked: Set[tuple] = set()
        for src, dst in links:
            self._check_pid(src)
            self._check_pid(dst)
            if src != dst:
                blocked.add((src, dst))
        self._set_unreachable(blocked if blocked else None)

    def heal(self) -> None:
        """Remove the partition mask: every link carries frames again."""
        self._set_unreachable(None)

    def _set_unreachable(self, blocked: Optional[Set[tuple]]) -> None:
        self._unreachable = blocked
        self._update_link_fault_flag()
        now = self._sim.now
        if self._obs is not None:
            self._obs.partition_changed(now, len(blocked) if blocked else 0)
        for listener in list(self._partition_listeners):
            listener(blocked, now)

    def is_link_blocked(self, src: int, dst: int) -> bool:
        """Whether the directed link ``src -> dst`` is partitioned away."""
        return self._unreachable is not None and (src, dst) in self._unreachable

    def set_wan_delays(self, matrix: Optional[Sequence[Sequence[float]]]) -> None:
        """Install an ``n x n`` per-pair extra propagation delay (``None`` clears).

        The delay is added between the shared-medium transmission and the
        receiving CPU -- pure propagation latency that occupies no resource,
        which is how a WAN backbone behaves between contended endpoints.
        """
        if matrix is None:
            self._wan_delays = None
        else:
            rows = [list(row) for row in matrix]
            if len(rows) != self._n or any(len(row) != self._n for row in rows):
                raise ValueError(f"the WAN delay matrix must be {self._n}x{self._n}")
            if any(delay < 0 for row in rows for delay in row):
                raise ValueError("WAN delays must be >= 0")
            self._wan_delays = rows
        self._update_link_fault_flag()

    def degrade_link(
        self,
        src: int,
        dst: int,
        loss_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        """Make the directed link ``src -> dst`` lossy and/or duplicating.

        Both probabilities zero restores the link.  Needs a random stream
        (:meth:`set_link_rng`) when either probability is positive.
        """
        self._check_pid(src)
        self._check_pid(dst)
        for name, value in (
            ("loss_probability", loss_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if loss_probability == 0.0 and duplicate_probability == 0.0:
            self._gray_links.pop((src, dst), None)
        else:
            if self._link_rng is None:
                raise RuntimeError("gray links need a random stream (set_link_rng)")
            self._gray_links[(src, dst)] = (loss_probability, duplicate_probability)
        self._update_link_fault_flag()

    def degrade_cpu(self, pid: int, factor: float) -> None:
        """Gray failure: scale the service time of ``CPU_pid`` by ``factor``."""
        self._check_pid(pid)
        self._cpus[pid].set_rate_factor(factor)
        if self._obs is not None:
            self._obs.process_degraded(self._sim.now, pid, factor)

    def restore_cpu(self, pid: int) -> None:
        """End a gray CPU degradation: ``CPU_pid`` runs at full speed again."""
        self._check_pid(pid)
        self._cpus[pid].set_rate_factor(1.0)
        if self._obs is not None:
            self._obs.process_degraded(self._sim.now, pid, 1.0)

    def _update_link_fault_flag(self) -> None:
        self._link_faults_active = (
            self._unreachable is not None
            or self._wan_delays is not None
            or bool(self._gray_links)
        )

    # ------------------------------------------------------------------ sending

    def send(self, message: Message) -> None:
        """Inject ``message`` into the network model.

        The sender pays the CPU emission cost once, the message occupies the
        network once (even for multicasts) and every remote destination pays
        the CPU reception cost.  Local (self) destinations are delivered at
        the current time without using any resource.
        """
        sender = message.sender
        n = self._n
        if sender < 0 or sender >= n:
            self._check_pid(sender)
        destinations = message.destinations
        for dest in destinations:
            if dest < 0 or dest >= n:
                self._check_pid(dest)

        dropped = sender in self._crashed
        if self._obs is not None:
            self._obs.message_send(self._sim.now, message, dropped)
        if dropped:
            self.stats.dropped_sender_crashed += 1
            return

        stats = self.stats
        stats.messages_sent += 1
        remote = message.remote_destinations()
        if len(remote) > 1:
            stats.multicasts_sent += 1
        elif len(remote) == 1:
            stats.unicasts_sent += 1

        if sender in destinations:
            # Local delivery bypasses the resources but still goes through the
            # event queue so that callers never see re-entrant callbacks.
            self._sim.schedule(0.0, self._deliver_local, sender, message)

        if remote:
            self._cpus[sender].submit(self._lambda_cpu, self._emitted, message)

    def _deliver_local(self, pid: int, message: Message) -> None:
        if pid in self._crashed:
            self.stats.dropped_receiver_crashed += 1
            return
        self._deliver(pid, message)

    def _emitted(self, message: Message) -> None:
        # The sending CPU finished the emission processing; the message now
        # occupies the shared network once, regardless of fan-out.
        self._network.submit(self._network_time, self._transmitted, message)

    def _transmitted(self, message: Message) -> None:
        if self._link_faults_active:
            self._transmitted_faulted(message)
            return
        cpus = self._cpus
        lambda_cpu = self._lambda_cpu
        received = self._received
        for dest in message.remote_destinations():
            cpus[dest].submit(lambda_cpu, received, dest, message)

    def _transmitted_faulted(self, message: Message) -> None:
        """Per-destination fan-out with partitions / gray links / WAN delays.

        Split from :meth:`_transmitted` so the no-fault path keeps its tight
        loop; this path only runs while some link fault is installed.
        """
        sender = message.sender
        unreachable = self._unreachable
        gray = self._gray_links
        wan = self._wan_delays
        stats = self.stats
        for dest in message.remote_destinations():
            if unreachable is not None and (sender, dest) in unreachable:
                # The frame crossed the medium but the link is cut: it never
                # loads the receiving CPU.
                stats.dropped_partitioned += 1
                continue
            copies = 1
            if gray:
                fault = gray.get((sender, dest))
                if fault is not None:
                    loss, duplicate = fault
                    if loss and self._link_rng.random() < loss:
                        stats.dropped_lossy_link += 1
                        continue
                    if duplicate and self._link_rng.random() < duplicate:
                        stats.duplicated_link += 1
                        copies = 2
            delay = wan[sender][dest] if wan is not None else 0.0
            for _copy in range(copies):
                if delay > 0.0:
                    self._sim.schedule(delay, self._wan_arrived, dest, message)
                else:
                    self._cpus[dest].submit(
                        self._lambda_cpu, self._received, dest, message
                    )

    def _wan_arrived(self, dest: int, message: Message) -> None:
        # The frame finished its WAN propagation; it now loads the receiving
        # CPU exactly as a local frame would.
        self._cpus[dest].submit(self._lambda_cpu, self._received, dest, message)

    def _received(self, dest: int, message: Message) -> None:
        if dest in self._crashed:
            # The CPU processed the frame but the crashed process never sees it.
            self.stats.dropped_receiver_crashed += 1
            return
        self._deliver(dest, message)

    def _deliver(self, dest: int, message: Message) -> None:
        callback = self._deliver_callbacks[dest]
        if callback is None:
            raise RuntimeError(f"no process attached for destination {dest}")
        self.stats.deliveries += 1
        if self._obs is not None:
            self._obs.message_deliver(self._sim.now, dest, message)
        callback(dest, message)

    # ------------------------------------------------------------------ helpers

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self._n:
            raise ValueError(f"process id {pid} out of range 0..{self._n - 1}")
