"""Contention-aware network model (Fig. 2 of the paper).

A message sent from process ``p_i`` to process ``p_j`` successively occupies

1. ``CPU_i`` for ``lambda`` time units (emission processing),
2. the single shared ``network`` resource for 1 time unit (transmission),
3. ``CPU_j`` for ``lambda`` time units (reception processing),

with a FIFO waiting queue in front of every resource.  The parameter
``lambda`` captures the relative cost of host processing versus the network
transmission; the paper's published results use ``lambda = 1``.

A multicast occupies the sending CPU and the network once (Ethernet-like
broadcast medium) and each receiving CPU once.  A destination equal to the
sender is delivered locally, without occupying any resource.

Crashes follow the paper's *software crash* semantics: once ``p_i`` crashes,
no message passes between ``p_i`` and ``CPU_i`` any more, but messages that
were already handed to ``CPU_i`` (queued or in service) are still emitted.

The emission -> transmission -> reception pipeline dispatches through bound
methods with the message passed as an event argument: the seed allocated
three closures per remote destination per send, which dominated allocation
counts on multicast-heavy workloads.  The event sequence itself is
unchanged, so simulation results stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.resources import FIFOResource

DeliverCallback = Callable[[int, Message], None]
CrashListener = Callable[[int, float], None]
RecoveryListener = Callable[[int, float], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the contention model.

    Attributes
    ----------
    n:
        Number of processes (ids ``0 .. n-1``).
    lambda_cpu:
        Time units spent on a host CPU to emit or to receive one message
        (``lambda`` in the paper).
    network_time:
        Time units one message occupies the shared network; the paper's time
        unit, fixed to 1 in all published experiments.
    """

    n: int
    lambda_cpu: float = 1.0
    network_time: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need at least one process, got n={self.n}")
        if self.lambda_cpu < 0:
            raise ValueError(f"lambda_cpu must be >= 0, got {self.lambda_cpu}")
        if self.network_time <= 0:
            raise ValueError(f"network_time must be > 0, got {self.network_time}")


class NetworkStats:
    """Counters describing the traffic a simulation produced."""

    __slots__ = (
        "messages_sent",
        "unicasts_sent",
        "multicasts_sent",
        "deliveries",
        "dropped_sender_crashed",
        "dropped_receiver_crashed",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.unicasts_sent = 0
        self.multicasts_sent = 0
        self.deliveries = 0
        self.dropped_sender_crashed = 0
        self.dropped_receiver_crashed = 0

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, keyed by counter name."""
        return {name: getattr(self, name) for name in self.__slots__}


class Network:
    """The shared transmission medium plus one CPU resource per process.

    Deliberately *not* slotted: there is one network per run (slots would
    save nothing) and tests monkeypatch ``send`` to trace traffic.
    """

    def __init__(self, sim: Simulator, config: NetworkConfig) -> None:
        self._sim = sim
        self.config = config
        # Scalars the per-message pipeline reads, hoisted out of the frozen
        # dataclass (immutable for the lifetime of the network).
        self._n = config.n
        self._lambda_cpu = config.lambda_cpu
        self._network_time = config.network_time
        self._network = FIFOResource(sim, "network")
        self._cpus: List[FIFOResource] = [
            FIFOResource(sim, f"cpu[{pid}]") for pid in range(config.n)
        ]
        # Indexed by pid (``None`` until attached): the delivery fan-out is
        # the hottest consumer, and a list index beats a dict probe there.
        self._deliver_callbacks: List[Optional[DeliverCallback]] = [None] * config.n
        self._crashed: Set[int] = set()
        self._crash_times: Dict[int, float] = {}
        self._crash_listeners: List[CrashListener] = []
        self._recovery_listeners: List[RecoveryListener] = []
        self.stats = NetworkStats()
        #: Instrumentation, or ``None`` (checked with one branch per send /
        #: delivery so the uninstrumented hot path stays hook-free).
        self._obs = None

    def set_instrumentation(self, obs) -> None:
        """Attach an :class:`repro.obs.Instrumentation` (``None`` detaches)."""
        self._obs = obs if obs is not None and obs.enabled else None

    # ------------------------------------------------------------------ wiring

    @property
    def sim(self) -> Simulator:
        """The simulation kernel this network is attached to."""
        return self._sim

    @property
    def n(self) -> int:
        """Number of processes."""
        return self._n

    def attach(self, pid: int, callback: DeliverCallback) -> None:
        """Register the delivery callback of process ``pid``."""
        self._check_pid(pid)
        self._deliver_callbacks[pid] = callback

    def add_crash_listener(self, listener: CrashListener) -> None:
        """Register a callback invoked as ``listener(pid, time)`` on crashes."""
        self._crash_listeners.append(listener)

    def add_recovery_listener(self, listener: RecoveryListener) -> None:
        """Register a callback invoked as ``listener(pid, time)`` on recoveries."""
        self._recovery_listeners.append(listener)

    def cpu(self, pid: int) -> FIFOResource:
        """The CPU resource of process ``pid`` (useful for tests and stats)."""
        self._check_pid(pid)
        return self._cpus[pid]

    @property
    def network_resource(self) -> FIFOResource:
        """The shared network resource."""
        return self._network

    # ------------------------------------------------------------------ crashes

    def crash(self, pid: int) -> None:
        """Crash process ``pid`` at the current simulation time.

        Idempotent.  Messages already handed to ``CPU_pid`` keep flowing
        (software-crash semantics); everything submitted afterwards is
        dropped, and nothing is delivered up to the crashed process.
        """
        self._check_pid(pid)
        if pid in self._crashed:
            return
        self._crashed.add(pid)
        self._crash_times[pid] = self._sim.now
        for listener in list(self._crash_listeners):
            listener(pid, self._sim.now)

    def recover(self, pid: int) -> None:
        """Bring a crashed process back up at the current simulation time.

        Idempotent.  The recovered process sends and receives again from this
        instant on; messages dropped while it was down stay lost (the protocol
        layers are responsible for any catch-up / state transfer).  The crash
        time of the last crash is kept for inspection.
        """
        self._check_pid(pid)
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        for listener in list(self._recovery_listeners):
            listener(pid, self._sim.now)

    def is_crashed(self, pid: int) -> bool:
        """Whether ``pid`` has crashed."""
        self._check_pid(pid)
        return pid in self._crashed

    def crash_time(self, pid: int) -> Optional[float]:
        """Time at which ``pid`` crashed, or ``None`` if it did not."""
        self._check_pid(pid)
        return self._crash_times.get(pid)

    def crashed_processes(self) -> Set[int]:
        """The set of crashed process ids."""
        return set(self._crashed)

    def correct_processes(self) -> List[int]:
        """Process ids that have not crashed, in increasing order."""
        return [pid for pid in range(self._n) if pid not in self._crashed]

    # ------------------------------------------------------------------ sending

    def send(self, message: Message) -> None:
        """Inject ``message`` into the network model.

        The sender pays the CPU emission cost once, the message occupies the
        network once (even for multicasts) and every remote destination pays
        the CPU reception cost.  Local (self) destinations are delivered at
        the current time without using any resource.
        """
        sender = message.sender
        n = self._n
        if sender < 0 or sender >= n:
            self._check_pid(sender)
        destinations = message.destinations
        for dest in destinations:
            if dest < 0 or dest >= n:
                self._check_pid(dest)

        dropped = sender in self._crashed
        if self._obs is not None:
            self._obs.message_send(self._sim.now, message, dropped)
        if dropped:
            self.stats.dropped_sender_crashed += 1
            return

        stats = self.stats
        stats.messages_sent += 1
        remote = message.remote_destinations()
        if len(remote) > 1:
            stats.multicasts_sent += 1
        elif len(remote) == 1:
            stats.unicasts_sent += 1

        if sender in destinations:
            # Local delivery bypasses the resources but still goes through the
            # event queue so that callers never see re-entrant callbacks.
            self._sim.schedule(0.0, self._deliver_local, sender, message)

        if remote:
            self._cpus[sender].submit(self._lambda_cpu, self._emitted, message)

    def _deliver_local(self, pid: int, message: Message) -> None:
        if pid in self._crashed:
            self.stats.dropped_receiver_crashed += 1
            return
        self._deliver(pid, message)

    def _emitted(self, message: Message) -> None:
        # The sending CPU finished the emission processing; the message now
        # occupies the shared network once, regardless of fan-out.
        self._network.submit(self._network_time, self._transmitted, message)

    def _transmitted(self, message: Message) -> None:
        cpus = self._cpus
        lambda_cpu = self._lambda_cpu
        received = self._received
        for dest in message.remote_destinations():
            cpus[dest].submit(lambda_cpu, received, dest, message)

    def _received(self, dest: int, message: Message) -> None:
        if dest in self._crashed:
            # The CPU processed the frame but the crashed process never sees it.
            self.stats.dropped_receiver_crashed += 1
            return
        self._deliver(dest, message)

    def _deliver(self, dest: int, message: Message) -> None:
        callback = self._deliver_callbacks[dest]
        if callback is None:
            raise RuntimeError(f"no process attached for destination {dest}")
        self.stats.deliveries += 1
        if self._obs is not None:
            self._obs.message_deliver(self._sim.now, dest, message)
        callback(dest, message)

    # ------------------------------------------------------------------ helpers

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self._n:
            raise ValueError(f"process id {pid} out of range 0..{self._n - 1}")
