"""Discrete-event simulation substrate.

This package implements the execution environment the paper simulates the
algorithms on:

* :mod:`repro.sim.engine` -- a deterministic discrete-event simulation kernel
  (event queue, simulation clock, timers).
* :mod:`repro.sim.resources` -- FIFO contention resources used to model CPUs
  and the shared network medium.
* :mod:`repro.sim.network` -- the contention-aware network model of the paper
  (Fig. 2): a message occupies the sending CPU for ``lambda`` time units, the
  shared network for one time unit and the receiving CPU for ``lambda`` time
  units, with FIFO queueing in front of every resource.
* :mod:`repro.sim.process` -- simulated processes hosting protocol components
  (the Neko-style protocol stack), timers and software-crash semantics.
* :mod:`repro.sim.rng` -- named, deterministic random streams.

The time unit of the simulation is the network transmission time; following
the paper we interpret it as one millisecond.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.messages import Message
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import Component, SimProcess
from repro.sim.resources import FIFOResource
from repro.sim.rng import RandomStreams

__all__ = [
    "Component",
    "EventHandle",
    "FIFOResource",
    "Message",
    "Network",
    "NetworkConfig",
    "RandomStreams",
    "SimProcess",
    "Simulator",
]
