"""Named deterministic random streams.

Every stochastic component of an experiment (workload arrivals, failure
detector mistakes, crash times, ...) draws from its own named stream derived
from the experiment seed.  This keeps runs reproducible and, more
importantly, keeps the streams independent: changing how many numbers one
component consumes does not perturb any other component.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A factory of independent :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> workload = streams.stream("workload")
    >>> fd = streams.stream("fd/3/1")
    >>> workload is streams.stream("workload")
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            derived = self._derive(name)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def _derive(self, name: str) -> int:
        digest = zlib.crc32(name.encode("utf-8"))
        return (self._seed * 2_654_435_761 + digest) & 0xFFFFFFFFFFFF

    def exponential(self, name: str, mean: float) -> float:
        """Draw an exponential variate with the given ``mean`` from ``name``.

        A mean of zero returns zero (used for degenerate distributions such
        as a zero mistake duration), a mean of ``inf`` returns ``inf``.
        """
        if mean == 0:
            return 0.0
        if mean == float("inf"):
            return float("inf")
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform_choice(self, name: str, items):
        """Pick a uniformly random element of ``items`` from stream ``name``."""
        seq = list(items)
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(seq)
