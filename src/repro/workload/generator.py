"""Poisson atomic broadcast workload.

The paper's workload (Section 5.1): A-broadcast events form a Poisson
process of aggregate rate *T* (the *throughput*), and all (correct) processes
send at the same constant rate.  The generator pre-schedules a fixed number
of arrivals on the simulation kernel; each arrival picks a sender uniformly
at random among the configured senders, which realises the "same rate at
every sender" requirement in expectation while keeping the aggregate arrival
process Poisson.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.core.types import BroadcastID
from repro.metrics.stats import interarrival_from_throughput

SentCallback = Callable[[int, BroadcastID, float], None]


@dataclass(frozen=True)
class SentMessage:
    """One workload message that was actually handed to the broadcast layer."""

    index: int
    broadcast_id: BroadcastID
    sender: int
    time: float


class PoissonWorkload:
    """Schedules Poisson A-broadcast arrivals on a :class:`BroadcastSystem`."""

    def __init__(
        self,
        system,
        throughput: float,
        senders: Optional[Sequence[int]] = None,
        rng_name: str = "workload",
        payload_factory: Optional[Callable[[int], Any]] = None,
        reassign_crashed: bool = False,
    ) -> None:
        """Create a workload of ``throughput`` messages per second.

        ``senders`` defaults to every process of the system; crash-steady
        experiments restrict it to the correct processes.  With
        ``reassign_crashed``, an arrival whose chosen sender is down at
        emission time is redirected to the next live configured sender (in
        pid order, wrapping around) -- scenarios whose fault schedule crashes
        and recovers processes mid-run use this to keep "correct processes
        send at the same rate" without disturbing the random streams.
        """
        if throughput <= 0:
            raise ValueError(f"throughput must be positive, got {throughput}")
        self.system = system
        self.throughput = throughput
        self.senders: List[int] = (
            list(senders) if senders is not None else list(range(system.config.n))
        )
        if not self.senders:
            raise ValueError("at least one sender is required")
        self.reassign_crashed = reassign_crashed
        self._rng = system.rng.stream(rng_name)
        self._payload_factory = payload_factory or (lambda index: f"workload-{index}")
        self._sent_callbacks: List[SentCallback] = []
        #: Messages actually A-broadcast so far, in send order.
        self.sent: List[SentMessage] = []
        self._scheduled = 0

    # ------------------------------------------------------------------ wiring

    @property
    def mean_interarrival(self) -> float:
        """Mean inter-arrival time in simulation time units (ms)."""
        return interarrival_from_throughput(self.throughput)

    def add_sent_callback(self, callback: SentCallback) -> None:
        """Subscribe to sends: ``callback(index, broadcast_id, time)``."""
        self._sent_callbacks.append(callback)

    # ------------------------------------------------------------------ scheduling

    def schedule_messages(self, count: int, start_time: float = 0.0) -> float:
        """Pre-schedule ``count`` arrivals starting after ``start_time``.

        Returns the time of the last scheduled arrival.  Arrival times and
        senders are drawn from the workload's dedicated random stream so the
        schedule only depends on the system seed.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        time = start_time
        for _ in range(count):
            time += self._rng.expovariate(1.0 / self.mean_interarrival)
            sender = self._rng.choice(self.senders)
            index = self._scheduled
            self._scheduled += 1
            self.system.sim.schedule_at(time, self._emit, index, sender)
        return time

    def scheduled_count(self) -> int:
        """Number of arrivals scheduled so far."""
        return self._scheduled

    # ------------------------------------------------------------------ internals

    def _emit(self, index: int, sender: int) -> None:
        if self.reassign_crashed and self.system.process(sender).crashed:
            sender = self._live_sender(sender)
        payload = self._payload_factory(index)
        broadcast_id = self.system.broadcast(sender, payload)
        now = self.system.sim.now
        sent = SentMessage(index=index, broadcast_id=broadcast_id, sender=sender, time=now)
        self.sent.append(sent)
        for callback in list(self._sent_callbacks):
            callback(index, broadcast_id, now)

    def _live_sender(self, sender: int) -> int:
        """The next configured sender (pid order, wrapping) that is up.

        Falls back to the original sender when every configured sender is
        down -- impossible under the ``f < n/2`` bound the scenarios enforce.
        """
        position = self.senders.index(sender)
        for offset in range(1, len(self.senders)):
            candidate = self.senders[(position + offset) % len(self.senders)]
            if not self.system.process(candidate).crashed:
                return candidate
        return sender
