"""Workload generation for the benchmark scenarios."""

from repro.workload.generator import PoissonWorkload, SentMessage

__all__ = ["PoissonWorkload", "SentMessage"]
