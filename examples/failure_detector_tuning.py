#!/usr/bin/env python3
"""How failure detector quality affects each algorithm (and how to tune one).

Part 1 sweeps the mistake recurrence time T_MR of the abstract QoS failure
detector model (as in Fig. 6 of the paper) and prints the latency of both
algorithms: the GM algorithm needs a much better-behaved failure detector
than the FD algorithm to stay usable.

Part 2 runs the concrete heartbeat failure detector (an extension of this
library) for a few period/timeout settings and reports the detection time it
actually achieves, which is how one maps implementation parameters onto the
paper's T_D metric.

Usage::

    python examples/failure_detector_tuning.py
"""

from repro import SystemConfig
from repro.failure_detectors.heartbeat import HeartbeatConfig, HeartbeatFailureDetector
from repro.scenarios.steady import run_suspicion_steady
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import SimProcess


def sweep_mistake_rate() -> None:
    print("Part 1 -- wrong suspicions (QoS model, T_M = 0, n = 3, T = 10/s)")
    print()
    header = f"{'T_MR [ms]':>10} | {'FD latency [ms]':>18} | {'GM latency [ms]':>18}"
    print(header)
    print("-" * len(header))
    for tmr in (20.0, 100.0, 1000.0, 10000.0):
        cells = []
        for algorithm in ("fd", "gm"):
            config = SystemConfig(n=3, stack=algorithm, seed=9)
            result = run_suspicion_steady(
                config,
                throughput=10.0,
                mistake_recurrence_time=tmr,
                mistake_duration=0.0,
                num_messages=80,
            )
            summary = result.summary()
            cell = f"{summary.mean:8.2f} ± {summary.ci_halfwidth:5.2f}"
            if not result.completed:
                cell += " (!)"
            cells.append(cell)
        print(f"{tmr:>10g} | {cells[0]:>18} | {cells[1]:>18}")
    print()
    print("The FD algorithm barely notices frequent mistakes; the GM algorithm pays")
    print("a view change for every one of them.")
    print()


def measure_heartbeat_detection_time(period: float, timeout: float) -> float:
    """Measure the crash detection time a heartbeat detector achieves."""
    sim = Simulator()
    network = Network(sim, NetworkConfig(n=3))
    processes = [SimProcess(sim, network, pid) for pid in range(3)]
    detectors = [
        HeartbeatFailureDetector(p, HeartbeatConfig(period=period, timeout=timeout))
        for p in processes
    ]
    for process in processes:
        process.start()
    detection = {}
    detectors[0].add_listener(
        lambda pid, suspected: detection.setdefault(pid, sim.now) if suspected else None
    )
    crash_time = 500.0
    sim.schedule_at(crash_time, processes[2].crash)
    sim.run(until=5_000.0)
    return detection.get(2, float("nan")) - crash_time


def sweep_heartbeat_settings() -> None:
    print("Part 2 -- mapping a real heartbeat detector onto the QoS metric T_D")
    print()
    header = f"{'period [ms]':>12} | {'timeout [ms]':>13} | {'measured T_D [ms]':>18}"
    print(header)
    print("-" * len(header))
    for period, timeout in ((5.0, 15.0), (10.0, 30.0), (20.0, 60.0), (50.0, 150.0)):
        detection_time = measure_heartbeat_detection_time(period, timeout)
        print(f"{period:>12g} | {timeout:>13g} | {detection_time:>18.1f}")
    print()
    print("The measured detection time is what you would plug into the crash-transient")
    print("scenario (T_D) when deciding how aggressively to tune the detector for the")
    print("group membership service versus the consensus layer, as Section 8 of the")
    print("paper recommends.")


def main() -> None:
    sweep_mistake_rate()
    sweep_heartbeat_settings()


if __name__ == "__main__":
    main()
