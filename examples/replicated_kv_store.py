#!/usr/bin/env python3
"""A replicated key-value store built on atomic broadcast (active replication).

This is the scenario Section 5.1 of the paper uses to motivate the latency
metric: clients send their requests to all server replicas with atomic
broadcast, every replica executes them in the agreed order, and the client
keeps the first reply.  The example runs a workload of writes and counter
increments against a five-replica store, crashes one replica mid-run, and
shows that the surviving replicas stay byte-for-byte identical while clients
keep getting answers.

Usage::

    python examples/replicated_kv_store.py [fd|gm]
"""

import sys

from repro import QoSConfig, SystemConfig, build_system
from repro.metrics.stats import summarize
from repro.replication.service import ReplicatedService
from repro.replication.state_machine import Command


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "gm"
    config = SystemConfig(
        n=5,
        stack=algorithm,
        seed=7,
        fd=QoSConfig(detection_time=20.0),
    )
    system = build_system(config)
    service = ReplicatedService(system, processing_time=0.5)
    system.start()

    # Forty client requests from four different front-ends.
    for i in range(40):
        client = 1 + (i % 4)
        if i % 3 == 0:
            command = Command("put", f"user-{i % 7}", f"profile-{i}", client=client, request_id=i)
        else:
            command = Command("increment", "page-views", client=client, request_id=i)
        service.submit_at(5.0 + 9.0 * i, client, command)

    # One replica (the sequencer / round-1 coordinator) crashes mid-run.
    system.crash_at(150.0, 0)
    system.run(until=30_000.0)

    correct = system.correct_processes()
    snapshots = {pid: service.replicas[pid].snapshot() for pid in correct}
    identical = len(set(snapshots.values())) == 1

    print(f"algorithm: {algorithm}   replicas: {config.n}   crashed: process 0 at t=150 ms")
    print(f"all {len(correct)} surviving replicas identical: {identical}")
    print(f"page-views counter on replica {correct[0]}: "
          f"{service.replicas[correct[0]].get('page-views')}")
    print()

    summary = summarize(service.response_times())
    print(f"client response time over {summary.count} requests: "
          f"{summary.mean:.2f} ms +/- {summary.ci_halfwidth:.2f} (95% CI), "
          f"max {summary.maximum:.2f} ms")
    slowest = max(service.requests.values(), key=lambda r: r.response_time or 0.0)
    print(f"slowest request: #{slowest.command.request_id} "
          f"({slowest.response_time:.2f} ms) -- submitted around the crash"
          if slowest.response_time else "")
    if algorithm != "fd":
        views = system.membership(correct[0]).view
        print(f"final group view: {views}")


if __name__ == "__main__":
    main()
