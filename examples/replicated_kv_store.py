#!/usr/bin/env python3
"""Load-testing the replicated key-value store (active replication).

This is the scenario Section 5.1 of the paper uses to motivate the latency
metric -- clients A-broadcast their requests to all server replicas, every
replica executes them in the agreed order, and the client keeps the first
reply -- promoted to a *service*: a closed-loop population of clients drives
an admission-controlled front end (:mod:`repro.load`), one replica crashes
and recovers mid-run, and the run is repeated with sequencer request
batching on to show the throughput lever.

The example prints, for batching off and on:

* the client-perceived response time distribution (p50/p99),
* the goodput and the admission outcomes (admitted/queued/shed),
* proof that the surviving replicas stayed byte-for-byte identical.

Usage::

    python examples/replicated_kv_store.py [fd|gm]
"""

import sys

from repro import QoSConfig, SystemConfig, build_system
from repro.load import (
    AdmissionConfig,
    ClosedLoopClients,
    CommandMix,
    LoadTestedService,
)
from repro.metrics.stats import latency_percentiles, summarize

CLIENTS = 12
THINK_TIME = 4.0  # ms: aggressive interactive users
TOTAL_REQUESTS = 600


def run_once(algorithm: str, max_batch: int) -> dict:
    """One closed-loop load test; returns the service read-outs."""
    config = SystemConfig(
        n=5,
        stack=algorithm,
        seed=7,
        fd=QoSConfig(detection_time=20.0),
        max_batch=max_batch,
        max_delay=2.0,
    )
    system = build_system(config)
    service = LoadTestedService(
        system,
        admission=AdmissionConfig(max_inflight=32, max_queue=64),
    )
    population = ClosedLoopClients(
        service,
        num_clients=CLIENTS,
        think_time=THINK_TIME,
        mix=CommandMix(put=0.45, get=0.3, increment=0.2, delete=0.05),
        senders=[1, 2, 3, 4],  # process 0 crashes; keep it off the ingress path
    )
    done = {"count": 0}

    def on_complete(_request) -> None:
        done["count"] += 1
        if done["count"] >= TOTAL_REQUESTS:
            system.sim.stop()

    service.add_completion_listener(on_complete)
    population.start(TOTAL_REQUESTS)

    # One replica (the sequencer / round-1 coordinator) crashes mid-run and
    # rejoins later; the service keeps answering from the survivors.
    system.crash_at(150.0, 0)
    system.recover_at(900.0, 0)
    system.run(until=120_000.0)
    finish_time = system.sim.now
    # Let the in-flight deliveries drain so every replica applies the tail
    # of the log (the client stopped at its *first* reply).
    system.run(until=finish_time + 1_000.0)

    response_times = service.response_times()
    correct = system.correct_processes()
    snapshots = {pid: service.replicated.replicas[pid].snapshot() for pid in correct}
    return {
        "summary": summarize(response_times),
        "percentiles": latency_percentiles(response_times),
        "goodput": 1000.0 * len(response_times) / finish_time,
        "outcomes": service.outcome_counts(),
        "identical": len(set(snapshots.values())) == 1,
        "survivors": len(correct),
        "consistent": service.replicas_consistent(),
    }


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "gm"
    print(
        f"algorithm: {algorithm}   replicas: 5   clients: {CLIENTS} "
        f"(closed loop, think={THINK_TIME:g} ms)"
    )
    print("fault schedule: process 0 crashes at t=150 ms, recovers at t=900 ms")
    print()

    results = {}
    for max_batch in (0, 8):
        label = "batching off" if max_batch == 0 else f"batching on (k={max_batch})"
        outcome = run_once(algorithm, max_batch)
        results[max_batch] = outcome
        summary = outcome["summary"]
        pct = outcome["percentiles"]
        print(f"[{label}]")
        print(
            f"  response time over {summary.count} requests: "
            f"{summary.mean:.2f} ms +/- {summary.ci_halfwidth:.2f} (95% CI), "
            f"p50 {pct['p50']:.2f} ms, p99 {pct['p99']:.2f} ms"
        )
        print(
            f"  goodput: {outcome['goodput']:.0f} req/s   outcomes: "
            f"{outcome['outcomes']}"
        )
        print(
            f"  all {outcome['survivors']} surviving replicas identical: "
            f"{outcome['identical']}   applied logs consistent: "
            f"{outcome['consistent']}"
        )
        print()

    gain = results[8]["goodput"] / results[0]["goodput"]
    print(
        f"closed-loop goodput gain from batching: {gain:.2f}x "
        "(closed loops self-throttle; open-loop saturation gains are larger -- "
        "see benchmarks/bench_service_load.py)"
    )


if __name__ == "__main__":
    main()
