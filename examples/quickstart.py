#!/usr/bin/env python3
"""Quickstart: atomically broadcast a handful of messages and inspect the run.

Builds a three-process system (choose the protocol stack on the command
line), A-broadcasts a few messages from different senders, then prints the
delivery order observed by every process, the per-message latency and the
traffic the contention-aware network model carried.

Usage::

    python examples/quickstart.py               # FD stack (Chandra-Toueg)
    python examples/quickstart.py gm            # fixed sequencer + group membership
    python examples/quickstart.py gm-nonuniform
    python examples/quickstart.py fd/heartbeat  # FD stack on a real heartbeat detector
"""

import sys

from repro import SystemConfig, build_system
from repro.metrics.latency import LatencyRecorder


def main() -> None:
    algorithm = sys.argv[1] if len(sys.argv) > 1 else "fd"
    config = SystemConfig(n=3, stack=algorithm, seed=42)
    system = build_system(config)

    recorder = LatencyRecorder()
    recorder.attach(system)

    # Three processes broadcast interleaved messages.
    messages = [
        (1.0, 0, "alpha"),
        (2.5, 1, "bravo"),
        (3.0, 2, "charlie"),
        (9.0, 1, "delta"),
        (9.4, 0, "echo"),
    ]
    system.start()
    for time, sender, payload in messages:
        system.broadcast_at(time, sender, payload)
    system.run(until=1_000.0)

    print(f"algorithm: {algorithm}   processes: {config.n}   lambda: {config.lambda_cpu}")
    print()
    print("Delivery order (identical on every process -- that is the point):")
    for pid in range(config.n):
        sequence = [payload for _bid, payload in system.abcast(pid).delivered]
        print(f"  p{pid}: {sequence}")

    print()
    print("Latency of each message (A-broadcast to first A-delivery):")
    for broadcast_id, latency in sorted(recorder.latencies().items()):
        print(f"  {str(broadcast_id):>8}: {latency:6.2f} ms")

    print()
    stats = system.message_stats()
    print(
        "Network traffic: "
        f"{stats['multicasts_sent']} multicasts, {stats['unicasts_sent']} unicasts, "
        f"{stats['deliveries']} deliveries"
    )


if __name__ == "__main__":
    main()
