#!/usr/bin/env python3
"""Compare how the two algorithms ride through a coordinator/sequencer crash.

Reproduces the crash-transient experiment of the paper (Fig. 8) in miniature:
the system runs under a steady Poisson load, process p1 (the round-1
coordinator of the FD algorithm and the sequencer of the GM algorithm)
crashes, and a message is A-broadcast at exactly that instant.  The script
prints, for both algorithms and several failure detection times, the latency
of that message and its overhead over the detection time.

Usage::

    python examples/failover_comparison.py [throughput_per_s]
"""

import sys

from repro import SystemConfig
from repro.scenarios.transient import run_crash_transient


def main() -> None:
    throughput = float(sys.argv[1]) if len(sys.argv) > 1 else 50.0
    detection_times = (0.0, 10.0, 100.0)
    runs = 10

    print(
        f"crash-transient comparison: n=3, throughput={throughput:g}/s, "
        f"{runs} runs per point, crash of p1, tagged message from p3"
    )
    print()
    header = f"{'T_D [ms]':>10} | {'algorithm':>10} | {'latency [ms]':>18} | {'overhead [ms]':>18}"
    print(header)
    print("-" * len(header))
    for detection_time in detection_times:
        for algorithm in ("fd", "gm"):
            config = SystemConfig(n=3, stack=algorithm, seed=123)
            result = run_crash_transient(
                config,
                throughput,
                detection_time=detection_time,
                crashed_process=0,
                num_runs=runs,
            )
            latency = result.latency_summary()
            overhead = result.overhead_summary()
            print(
                f"{detection_time:>10g} | {algorithm.upper():>10} | "
                f"{latency.mean:9.2f} ± {latency.ci_halfwidth:5.2f} | "
                f"{overhead.mean:9.2f} ± {overhead.ci_halfwidth:5.2f}"
            )
    print()
    print("Reading: the latency always exceeds T_D (nothing can be ordered before")
    print("the crash is detected); the overhead is what the recovery itself costs --")
    print("one extra consensus round for the FD algorithm, a full view change for")
    print("the GM algorithm.")


if __name__ == "__main__":
    main()
