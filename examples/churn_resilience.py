#!/usr/bin/env python3
"""How crash-recovery churn degrades each atomic broadcast algorithm.

The paper's fault model is crash-stop: a crashed process never comes back.
This example uses the fault-schedule engine's ``churn-steady`` scenario
(crashes arrive as a Poisson process and every crashed process recovers and
rejoins after an exponential downtime) and sweeps the churn rate for both
algorithms through the campaign subsystem -- every point is cached, so a
re-run with ``--cache-dir`` semantics (the ``CACHE_DIR`` constant below)
only simulates what is missing.

Usage::

    python examples/churn_resilience.py
"""

from repro.campaigns import CampaignRunner, ResultStore, grid, merge_scenario_results

#: Set to a directory path to make re-runs incremental (or None to disable).
CACHE_DIR = None

#: Crash arrivals per second swept on the x axis.
CHURN_RATES = (0.5, 2.0, 5.0)
MEAN_DOWNTIME = 200.0  # ms a crashed process stays down on average
DETECTION_TIME = 10.0  # T_D of the failure detectors, ms
THROUGHPUT = 50.0  # workload, messages/s
MESSAGES = 120  # measured messages per point
SEEDS = (1, 2, 3)  # replicas pooled per point


def main() -> None:
    store = ResultStore(CACHE_DIR) if CACHE_DIR else None
    runner = CampaignRunner(jobs=1, store=store)

    print(
        f"churn resilience (n = 3, T = {THROUGHPUT:g}/s, downtime = {MEAN_DOWNTIME:g} ms,"
        f" T_D = {DETECTION_TIME:g} ms, {len(SEEDS)} seeds/point)"
    )
    print()
    header = (
        f"{'churn [1/s]':>12} | {'FD latency [ms]':>18} | {'GM latency [ms]':>18}"
    )
    print(header)
    print("-" * len(header))

    for churn_rate in CHURN_RATES:
        campaign = grid(
            "churn-steady",
            name=f"churn-{churn_rate:g}",
            stacks=("fd", "gm"),
            n_values=(3,),
            throughputs=(THROUGHPUT,),
            seeds=SEEDS,
            num_messages=MESSAGES,
            churn_rate=churn_rate,
            mean_downtime=MEAN_DOWNTIME,
            detection_time=DETECTION_TIME,
        )
        run = runner.run(campaign)
        cells = []
        for series in campaign.series:
            (series_point,) = series.points
            merged = merge_scenario_results(
                [run.result(point) for point in series_point.points]
            )
            summary = merged.summary()
            cell = f"{summary.mean:8.2f} ± {summary.ci_halfwidth:5.2f}"
            if not merged.completed:
                cell += " (!)"
            cells.append(cell)
        print(f"{churn_rate:>12g} | {cells[0]:>18} | {cells[1]:>18}")

    print()
    print("Both algorithms survive churn thanks to recovery (FD: decision catch-up;")
    print("GM: rejoin view change + state transfer).  The GM algorithm pays two view")
    print("changes per churn event -- exclusion and re-admission -- so its latency")
    print("climbs faster with the churn rate than the FD algorithm's, mirroring the")
    print("suspicion-steady asymmetry of Figs. 6-7 under a harsher fault model.")


if __name__ == "__main__":
    main()
