#!/usr/bin/env python3
"""QoS-modelled vs real heartbeat failure detection under faults.

The paper abstracts failure detectors through QoS metrics; the stack
registry makes the concrete, message-based heartbeat detector a drop-in
``fd_kind`` on the same stacks.  This example sweeps the *same* fault
schedules -- crash-recovery churn and a correlated mid-run crash -- once
with the abstract QoS detector (``T_D`` pinned) and once with real
heartbeats (detection emerges from period + timeout, and the heartbeat
traffic loads the contention network), for both atomic broadcast stacks.
The comparison was unreachable before the pluggable-stack redesign: the
heartbeat fabric existed but no CLI, scenario or campaign could select it.

Usage::

    python examples/fd_kind_comparison.py
"""

from repro.campaigns import CampaignRunner, ResultStore, grid, merge_scenario_results

#: Set to a directory path to make re-runs incremental (or None to disable).
CACHE_DIR = None

THROUGHPUT = 50.0  # workload, messages/s
MESSAGES = 120  # measured messages per point
SEEDS = (1, 2)  # replicas pooled per point
DETECTION_TIME = 30.0  # T_D of the QoS detectors, ms (~ heartbeat period + timeout)


def scenario_grids():
    """The two fault schedules, each swept over stacks x fd kinds."""
    common = dict(
        stacks=("fd", "gm"),
        fd_kinds=("qos", "heartbeat"),
        n_values=(3,),
        throughputs=(THROUGHPUT,),
        seeds=SEEDS,
        num_messages=MESSAGES,
        detection_time=DETECTION_TIME,
    )
    yield "churn (2/s, 150 ms down)", grid(
        "churn-steady",
        name="fdkind-churn",
        churn_rate=2.0,
        mean_downtime=150.0,
        **common,
    )
    yield "correlated crash (1 proc)", grid(
        "correlated-crash",
        name="fdkind-correlated",
        crashes=1,
        **common,
    )


def main() -> None:
    store = ResultStore(CACHE_DIR) if CACHE_DIR else None
    runner = CampaignRunner(jobs=1, store=store)

    print(
        f"failure detector kinds under faults (n = 3, T = {THROUGHPUT:g}/s, "
        f"QoS T_D = {DETECTION_TIME:g} ms vs heartbeat 10 ms period / 30 ms timeout)"
    )
    for title, campaign in scenario_grids():
        run = runner.run(campaign)
        print()
        print(title)
        header = f"{'series':<22} | {'latency [ms]':>18} | {'undelivered':>11}"
        print(header)
        print("-" * len(header))
        for series in campaign.series:
            (series_point,) = series.points
            merged = merge_scenario_results(
                [run.result(point) for point in series_point.points]
            )
            summary = merged.summary()
            cell = f"{summary.mean:8.2f} ± {summary.ci_halfwidth:5.2f}"
            print(f"{series.label:<22} | {cell:>18} | {merged.undelivered:>11}")

    print()
    print("The heartbeat rows pay two visible costs the QoS model abstracts away:")
    print("detection latency jitters with the heartbeat phase instead of being a")
    print("constant T_D, and the n*(n-1) heartbeat streams compete with the workload")
    print("for the network, which shows up as extra latency at higher throughput.")


if __name__ == "__main__":
    main()
